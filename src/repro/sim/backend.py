"""Slot-resolve backend dispatch: the ``engine=`` tiers above "batch".

:func:`~repro.sim.engine.run_reactive_batch` and
:func:`~repro.sim.engine.replay_batch` accept ``engine`` in

* ``"batch"`` — the dense CSR kernel
  (:meth:`~repro.radio.channel.SlotKernel.resolve_batch`), always
  available, the default;
* ``"packed"`` — bit-packed word-space resolve
  (:class:`~repro.radio.bitpack.PackedSlotKernel`), pure numpy;
* ``"compiled"`` — the cffi/C kernel (:mod:`repro.sim.native`),
  fastest, optional dependency;
* ``"auto"`` — best available: compiled, else packed, else batch.

A backend consumes the slot's deduplicated, (trial, node)-sorted
transmission pairs and produces **sparse** outcomes — received pairs
with sender attribution plus either collision pairs (trace mode) or
per-trial collision counts (summary mode) — in the exact (trial,
node)-sorted order of the dense path, bit for bit (loss draws use the
same counter RNG stream via the integer threshold of
:func:`~repro.radio.impairments.bernoulli_threshold`).

Fallback rules (silent, by design — callers ask for a *tier*, not a
hard requirement): losses other than ``None`` /
:class:`~repro.radio.impairments.BernoulliBatchLoss` /
:class:`~repro.radio.impairments.BurstBatchLoss` cannot be applied in
word space, node counts beyond :func:`packed_max_nodes` (default
:data:`~repro.radio.bitpack.MAX_PACKED_NODES`, overridable via the
``REPRO_PACKED_MAX_NODES`` environment variable) would blow up the
packed neighbour table, and big-endian hosts break the packing layout —
each of these degrades to the dense kernel; a missing native build
degrades ``"compiled"`` to ``"packed"``.  :func:`resolve_engine`
reports the tier that would actually run — and, with ``explain=True``,
which rule decided it — for benchmarks and CLI output.

The word-space backends also own the matching **recovery state tier**
(:meth:`PackedBackend.make_recovery` /
:meth:`NativeBackend.make_recovery`, see
:mod:`repro.sim.recovery_packed`): each resolve with sender attribution
additionally records the CSR edge positions of its decodes
(``last_epos``), which the packed recovery update consumes directly
instead of re-deriving them per slot.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .. import faults, profiling
from ..radio import bitpack
from ..radio.channel import SlotKernel
from ..radio.impairments import (BatchLoss, BernoulliBatchLoss,
                                 BurstBatchLoss, _splitmix64,
                                 bernoulli_threshold, counter_slot_keys)
from ..topology.base import Topology
from . import native
from .recovery import RecoveryPolicy
from .recovery_packed import NativeRecoveryState, PackedRecoveryState

__all__ = ["BREAKER", "BackendFault", "CircuitBreaker", "ENGINES",
           "demote_tier", "make_backend", "packed_max_nodes",
           "resolve_engine"]

#: Engine names accepted by the batched entry points.
ENGINES = ("batch", "packed", "compiled", "auto")

_EMPTY = np.empty(0, dtype=np.int64)

#: Loss classes the word-space tiers can draw directly (exact types:
#: a subclass may override semantics the tiers do not replicate).
_WORD_LOSSES = (BernoulliBatchLoss, BurstBatchLoss)


def check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")


class BackendFault(RuntimeError):
    """A word-space backend failed mid-run.

    Raised by the engine loops when ``backend.resolve`` (or backend
    construction inside a run) throws; carries the tier that failed so
    the demotion wrapper can retry one tier down.  Tier bit-identity
    makes the retried run's answer equal to what the failed tier would
    have produced.
    """

    def __init__(self, tier: str, cause: BaseException):
        self.tier = tier
        self.cause = cause
        super().__init__(f"{tier} backend fault: "
                         f"{type(cause).__name__}: {cause}")


class CircuitBreaker:
    """Consecutive-failure breaker over the word-space tiers.

    One failure demotes only the run that saw it; *repeated* failures
    (``threshold`` in a row, per tier) open the breaker so subsequent
    runs skip the flaky tier for ``cooldown_s`` seconds without paying
    a doomed construction or a mid-run retry.  After the cooldown the
    tier is probed again (half-open: one more failure re-opens it
    immediately).  :func:`resolve_engine` consults the breaker, so the
    demotion reason lands in the CLI engine-decision line.
    """

    TIERS = ("compiled", "packed")

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0,
                 clock=time.monotonic):
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: Dict[str, int] = {}
        self._open_until: Dict[str, float] = {}
        self._reason: Dict[str, str] = {}

    def record_failure(self, tier: str, reason: str = "") -> None:
        with self._lock:
            count = self._failures.get(tier, 0) + 1
            self._failures[tier] = count
            if reason:
                self._reason[tier] = reason
            if count >= self.threshold:
                self._open_until[tier] = self._clock() + self.cooldown_s

    def record_success(self, tier: str) -> None:
        with self._lock:
            self._failures[tier] = 0
            self._open_until.pop(tier, None)

    def force_open(self, tier: str, reason: str = "forced open") -> None:
        """Open the breaker by hand (ops escape hatch / tests)."""
        with self._lock:
            self._failures[tier] = self.threshold
            self._reason[tier] = reason
            self._open_until[tier] = self._clock() + self.cooldown_s

    def allowed(self, tier: str) -> bool:
        with self._lock:
            until = self._open_until.get(tier)
            if until is None:
                return True
            if self._clock() >= until:
                # Half-open: allow one probe; a failure re-opens at once.
                self._open_until.pop(tier, None)
                self._failures[tier] = self.threshold - 1
                return True
            return False

    def reason(self, tier: str) -> str:
        with self._lock:
            return self._reason.get(tier, "repeated failures")

    def state(self) -> Dict[str, Dict[str, object]]:
        """Wire-friendly snapshot, one entry per word-space tier."""
        with self._lock:
            now = self._clock()
            out: Dict[str, Dict[str, object]] = {}
            for tier in self.TIERS:
                until = self._open_until.get(tier)
                is_open = until is not None and now < until
                out[tier] = {
                    "open": is_open,
                    "failures": self._failures.get(tier, 0),
                    "reason": self._reason.get(tier, "") if is_open else "",
                }
            return out

    def reset(self) -> None:
        with self._lock:
            self._failures.clear()
            self._open_until.clear()
            self._reason.clear()


#: Process-global breaker guarding the word-space tiers; surfaced in
#: the ``health`` wire response and the CLI engine-decision line.
BREAKER = CircuitBreaker()

#: Demotion ladder.  ``batch`` has no entry: the dense kernel is the
#: floor and has no backend object to fault.
_DEMOTION = {"compiled": "packed", "packed": "batch"}


def demote_tier(tier: str, reason: str = "") -> str:
    """Record *tier*'s failure in the breaker; return the tier below."""
    BREAKER.record_failure(tier, reason)
    return _DEMOTION[tier]


def packed_max_nodes() -> int:
    """Node-count cutoff of the word-space tiers.

    Defaults to :data:`~repro.radio.bitpack.MAX_PACKED_NODES` (the
    packed neighbour table is ``n * ceil(n/64)`` words, quadratic-ish in
    *n*); the environment variable ``REPRO_PACKED_MAX_NODES`` overrides
    it for hosts where the memory/speed trade-off differs.  Read on
    every call so tests and long-lived processes can retune it.
    """
    raw = os.environ.get("REPRO_PACKED_MAX_NODES")
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return bitpack.MAX_PACKED_NODES


def _packable(num_nodes: int,
              loss: Optional[BatchLoss]) -> Tuple[bool, str]:
    """(word-space tiers can serve this request?, reason)."""
    if not bitpack.packing_supported():
        return False, "big-endian host: word packing unsupported"
    cutoff = packed_max_nodes()
    if num_nodes <= 0:
        return False, "empty topology"
    if num_nodes > cutoff:
        return False, (f"n={num_nodes} exceeds packed cutoff {cutoff} "
                       f"(override with REPRO_PACKED_MAX_NODES)")
    if not (loss is None or type(loss) in _WORD_LOSSES):
        return False, (f"loss type {type(loss).__name__} has no "
                       f"word-space draw")
    return True, "word-space tiers available"


def resolve_engine(engine: str, num_nodes: int,
                   loss: Optional[BatchLoss] = None,
                   explain: bool = False,
                   threads: Optional[int] = None
                   ) -> Union[str, Tuple[str, str]]:
    """The tier that would actually run for this request.

    Applies the fallback rules without building anything heavier than
    the native-availability probe.  With ``explain=True`` returns
    ``(tier, reason)`` — the reason names which fallback rule (if any)
    decided the tier, for CLI output and benchmarks; for the compiled
    tier it also reports the kernel thread count the ``threads=``
    request resolves to (``None`` meaning "all allowed cores", see
    :func:`~repro.sim.native.resolve_native_threads`).
    """
    check_engine(engine)

    def result(tier: str, reason: str):
        return (tier, reason) if explain else tier

    if engine == "batch":
        return result("batch", "batch tier requested")
    ok, why = _packable(num_nodes, loss)
    if not ok:
        return result("batch", why)
    if engine == "packed":
        if not BREAKER.allowed("packed"):
            return result("batch", f"circuit breaker open: packed "
                                   f"({BREAKER.reason('packed')})")
        return result("packed", "packed tier requested")
    # "compiled" or "auto": take the native tier when it builds and the
    # breaker lets it; degrade down the ladder otherwise.
    if not BREAKER.allowed("compiled"):
        blame = (f"circuit breaker open: compiled "
                 f"({BREAKER.reason('compiled')})")
    elif native.native_available():
        width = native.resolve_native_threads(threads)
        return result("compiled",
                      f"native kernel available ({width} thread"
                      f"{'s' if width != 1 else ''})")
    else:
        blame = f"native unavailable ({native.native_reason()})"
    if not BREAKER.allowed("packed"):
        return result("batch", f"{blame}; circuit breaker open: packed "
                               f"({BREAKER.reason('packed')})")
    return result("packed", blame)


class _LossSpec:
    """Word-space view of the slot loss: kind 0 none / 1 Bernoulli /
    2 whole-slot blackout."""

    def __init__(self, loss: Optional[BatchLoss]) -> None:
        self.kind = 0
        self.seeds = None
        self.threshold = 0
        self.burst: Optional[BurstBatchLoss] = None
        if type(loss) is BernoulliBatchLoss:
            threshold = bernoulli_threshold(loss.p)
            if threshold:
                self.kind = 1
                self.seeds = np.ascontiguousarray(loss.seeds,
                                                  dtype=np.uint64)
                self.threshold = threshold
        elif type(loss) is BurstBatchLoss:
            self.kind = 2
            self.burst = loss


class PackedBackend:
    """Pure-numpy word-space tier (``engine="packed"``)."""

    name = "packed"

    def __init__(self, kernel: SlotKernel, batch: int,
                 loss: Optional[BatchLoss],
                 alive_masks: Optional[np.ndarray],
                 need_senders: bool, need_coll_pairs: bool) -> None:
        self._pk = kernel.packed()
        self._loss = _LossSpec(loss)
        self._alive_words = (None if alive_masks is None
                             else bitpack.pack_bool_matrix(alive_masks))
        self._batch = batch
        self._need_senders = need_senders
        self._need_coll_pairs = need_coll_pairs
        #: CSR positions of the last slot's (receiver -> sender) edges,
        #: refreshed by every resolve with senders; feeds the packed
        #: recovery state's known-edge bitset for free.
        self.last_epos: Optional[np.ndarray] = None

    def make_recovery(self, topology: Topology, policy: RecoveryPolicy,
                      relay_like: np.ndarray,
                      trials: int) -> PackedRecoveryState:
        """The recovery state matching this tier (word-packed numpy)."""
        return PackedRecoveryState(topology, policy, relay_like, trials)

    def resolve(self, t: int, tr: np.ndarray, nd: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray],
                           Union[np.ndarray,
                                 Tuple[np.ndarray, np.ndarray]]]:
        """Resolve one slot; pairs must be (trial, node)-sorted unique.

        Returns ``(rt, rn, sv, coll)``: received pairs in (trial,
        node) order, their senders (or ``None`` when not requested),
        and collisions as ``(ct, cn)`` pairs or per-trial counts.
        """
        faults.check(faults.BACKEND_RESOLVE, key=(self.name,),
                     detail="packed word-space resolve")
        pk = self._pk
        with profiling.phase("resolve"):
            active, received, collided, txw = pk.resolve_words(nd, tr)
            if self._alive_words is not None:
                aw = self._alive_words[active]
                received &= aw
                collided &= aw
            rt, rn = bitpack.words_to_pairs(active, received)
        spec = self._loss
        if spec.kind and len(rt):
            with profiling.phase("loss-rng"):
                if spec.kind == 1:
                    keys = counter_slot_keys(spec.seeds, t)
                    bits = _splitmix64(keys[rt] ^ rn.astype(np.uint64))
                    keep = (bits >> np.uint64(11)) >= np.uint64(
                        spec.threshold)
                else:
                    keep = spec.burst.slot_survival(t)[rt]
                rt, rn = rt[keep], rn[keep]
        sv = None
        if self._need_senders:
            sv, self.last_epos = pk.attribute_senders(
                rt, rn, active, txw, return_epos=True)
        if self._need_coll_pairs:
            coll = bitpack.words_to_pairs(active, collided)
        else:
            counts = np.zeros(self._batch, dtype=np.int64)
            counts[active] = bitpack.popcount(collided).sum(
                axis=1, dtype=np.int64)
            coll = counts
        return rt, rn, sv, coll


class NativeBackend:
    """cffi/C tier (``engine="compiled"``); same contract as
    :class:`PackedBackend`, one fused C pass per slot."""

    name = "compiled"

    def __init__(self, kernel: SlotKernel, batch: int,
                 loss: Optional[BatchLoss],
                 alive_masks: Optional[np.ndarray],
                 need_senders: bool, need_coll_pairs: bool,
                 threads: Optional[int] = None) -> None:
        faults.check(faults.NATIVE_BUILD,
                     detail="native kernel build/dlopen failure")
        module = native.native_kernel()
        if module is None:  # pragma: no cover - guarded by make_backend
            raise RuntimeError(f"native tier unavailable: "
                               f"{native.native_reason()}")
        self._module = module
        self._ffi, self._lib = module.ffi, module.lib
        #: Kernel pool width; resolved once (None -> env/affinity) so
        #: a backend's tier choice is stable for its lifetime.
        self.threads = native.resolve_native_threads(threads)
        self.last_epos: Optional[np.ndarray] = None
        pk = kernel.packed()
        self._n = kernel.num_nodes
        self._words = pk.words
        self._max_degree = max(kernel.max_degree, 1)
        self._loss = _LossSpec(loss)
        self._batch = batch
        self._need_senders = need_senders
        self._need_coll_pairs = need_coll_pairs
        ffi = self._ffi

        def keep(array, ctype):
            # from_buffer pins the array; stash both so neither the
            # ndarray nor the cdata is collected mid-run.
            return array, ffi.cast(ctype, ffi.from_buffer(array))

        self._indptr = keep(kernel.indptr, "int64_t *")
        self._indices = keep(kernel.indices, "int64_t *")
        self._nbr_words = keep(pk.nbr_words, "uint64_t *")
        if alive_masks is None:
            self._alive = (None, ffi.NULL)
        else:
            self._alive = keep(bitpack.pack_bool_matrix(alive_masks),
                               "uint64_t *")
        shape = (batch, self._words)
        self._ones = keep(np.zeros(shape, dtype=np.uint64), "uint64_t *")
        self._twos = keep(np.zeros(shape, dtype=np.uint64), "uint64_t *")
        self._txw = keep(np.zeros(shape, dtype=np.uint64), "uint64_t *")
        self._coll_counts = keep(np.zeros(batch, dtype=np.int64),
                                 "int64_t *")
        self._out_counts = keep(np.zeros(2, dtype=np.int64), "int64_t *")
        self._cap = 0
        self._grow(64)

    def _grow(self, cap: int) -> None:
        if cap <= self._cap:
            return
        keep = lambda a: (a, self._ffi.cast("int64_t *",
                                            self._ffi.from_buffer(a)))
        self._rx_tr = keep(np.empty(cap, dtype=np.int64))
        self._rx_nd = keep(np.empty(cap, dtype=np.int64))
        self._rx_sv = keep(np.empty(cap, dtype=np.int64))
        self._rx_ep = keep(np.empty(cap, dtype=np.int64))
        self._coll_tr = keep(np.empty(cap, dtype=np.int64))
        self._coll_nd = keep(np.empty(cap, dtype=np.int64))
        self._cap = cap

    def make_recovery(self, topology: Topology, policy: RecoveryPolicy,
                      relay_like: np.ndarray,
                      trials: int) -> NativeRecoveryState:
        """The recovery state matching this tier (C inner loops)."""
        return NativeRecoveryState(topology, policy, relay_like, trials,
                                   self._module, threads=self.threads)

    def resolve(self, t: int, tr: np.ndarray, nd: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray],
                           Union[np.ndarray,
                                 Tuple[np.ndarray, np.ndarray]]]:
        """See :meth:`PackedBackend.resolve`; returned arrays are views
        into reused scratch, valid until the next call."""
        faults.check(faults.BACKEND_RESOLVE, key=(self.name,),
                     detail="native slot resolve")
        ffi, lib = self._ffi, self._lib
        tr = np.ascontiguousarray(tr, dtype=np.int64)
        nd = np.ascontiguousarray(nd, dtype=np.int64)
        # Every rx/collision is a neighbour of some transmitter.
        self._grow(len(nd) * self._max_degree + 1)
        spec = self._loss
        keys_ptr = surv_ptr = ffi.NULL
        keys = surv = None  # keep buffers alive across the C call
        with profiling.phase("loss-rng"):
            if spec.kind == 1:
                keys = np.ascontiguousarray(
                    counter_slot_keys(spec.seeds, t))
                keys_ptr = ffi.cast("uint64_t *", ffi.from_buffer(keys))
            elif spec.kind == 2:
                surv = spec.burst.slot_survival(t).astype(np.uint8)
                surv_ptr = ffi.cast("uint8_t *", ffi.from_buffer(surv))
        counts = self._coll_counts[0]
        if not self._need_coll_pairs:
            counts[:] = 0
        with profiling.phase("resolve"):
            lib.resolve_slot(
                self.threads,
                self._n, self._words, self._max_degree,
                self._indptr[1], self._indices[1], self._nbr_words[1],
                ffi.cast("int64_t *", ffi.from_buffer(tr)),
                ffi.cast("int64_t *", ffi.from_buffer(nd)), len(nd),
                self._alive[1],
                spec.kind, keys_ptr, spec.threshold, surv_ptr,
                int(self._need_senders), int(self._need_coll_pairs),
                self._ones[1], self._twos[1], self._txw[1],
                self._rx_tr[1], self._rx_nd[1], self._rx_sv[1],
                self._rx_ep[1],
                self._coll_tr[1], self._coll_nd[1],
                self._coll_counts[1], self._out_counts[1])
        n_rx, n_coll = map(int, self._out_counts[0])
        rt = self._rx_tr[0][:n_rx]
        rn = self._rx_nd[0][:n_rx]
        sv = self._rx_sv[0][:n_rx] if self._need_senders else None
        self.last_epos = (self._rx_ep[0][:n_rx]
                          if self._need_senders else None)
        if self._need_coll_pairs:
            coll = (self._coll_tr[0][:n_coll], self._coll_nd[0][:n_coll])
        else:
            coll = counts
        return rt, rn, sv, coll


def make_backend(kernel: SlotKernel, batch: int, engine: str,
                 loss: Optional[BatchLoss],
                 alive_masks: Optional[np.ndarray],
                 need_senders: bool, need_coll_pairs: bool,
                 threads: Optional[int] = None
                 ) -> Optional[Union[PackedBackend, NativeBackend]]:
    """Build the backend for *engine*, or ``None`` for the dense tier.

    ``None`` (i.e. "use :meth:`~repro.radio.channel.SlotKernel.
    resolve_batch`") is returned both for ``engine="batch"`` and for
    any request the word-space tiers cannot serve — see the module
    docstring for the fallback rules.  ``threads`` reaches only the
    compiled tier (the numpy tiers have no kernel pool): ``None``
    means "all allowed cores" per
    :func:`~repro.sim.native.resolve_native_threads`; results are
    bit-identical at every width.
    """
    tier = resolve_engine(engine, kernel.num_nodes, loss)
    while tier != "batch":
        try:
            if tier == "compiled":
                return NativeBackend(kernel, batch, loss, alive_masks,
                                     need_senders, need_coll_pairs,
                                     threads=threads)
            return PackedBackend(kernel, batch, loss, alive_masks,
                                 need_senders, need_coll_pairs)
        except Exception as exc:
            # A tier that cannot even construct (dlopen/build failure,
            # injected or organic) demotes this run and feeds the
            # breaker; the run itself still happens, one tier down.
            tier = demote_tier(tier, f"{type(exc).__name__}: {exc}")
    return None
