"""Broadcast performance metrics (the paper's Section 4 quantities).

From a :class:`~repro.sim.trace.BroadcastTrace` we compute exactly what the
paper tabulates:

* ``T_x`` — "the total times that the message is transmitted by nodes in
  each broadcast";
* ``R_x`` — "the total times that the message is received by nodes in each
  broadcast" (successful decodes, duplicates included — in the ideal case
  R_x equals T_x x degree, confirming this reading);
* power — "total power consumed for transmitting and receiving messages";
* delay — "time from the source initiated the broadcast to the time the
  broadcast is over", in slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..topology.base import Topology
from .trace import BroadcastTrace


@dataclass(frozen=True)
class BroadcastMetrics:
    """Headline metrics of one broadcast (one row of Tables 2-4)."""

    topology: str
    num_nodes: int
    source: tuple
    tx: int
    rx: int
    duplicates: int
    collisions: int
    energy_j: float
    delay_slots: int
    reachability: float
    relay_count: int
    retransmit_count: int

    @property
    def reached_all(self) -> bool:
        """True iff the broadcast informed every node."""
        return self.reachability >= 1.0

    def as_row(self) -> dict:
        """Dict form for table assembly / CSV export."""
        return {
            "topology": self.topology,
            "source": self.source,
            "tx": self.tx,
            "rx": self.rx,
            "duplicates": self.duplicates,
            "collisions": self.collisions,
            "energy_J": self.energy_j,
            "delay_slots": self.delay_slots,
            "reachability": self.reachability,
            "relays": self.relay_count,
            "retransmitters": self.retransmit_count,
        }


def compute_metrics_from_counts(
    topology: Topology,
    source_index: int,
    first_rx,
    tx_count,
    rx_count,
    collisions: int,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
) -> BroadcastMetrics:
    """:class:`BroadcastMetrics` from per-node count arrays.

    Mirrors :func:`compute_metrics` field for field, but consumes the
    aggregate arrays of a batched summary run (one row of a
    :class:`~repro.sim.summary.TraceSummary`) instead of a materialised
    event-tuple trace: every metric the paper tabulates is a reduction
    over per-node counts, so the symmetry-reduced sweep never has to pay
    per-event tuple materialisation for class members.  For the same
    broadcast the two constructors produce equal metrics (the trace
    properties ``num_tx``/``num_rx``/``delay_slots``/... are the same
    reductions).
    """
    num_tx = int(tx_count.sum())
    num_rx = int(rx_count.sum())
    num_first_rx = int((first_rx > 0).sum())
    all_reached = bool((first_rx >= 0).all())
    energy = model.broadcast_energy(
        num_tx=num_tx, num_rx=num_rx, bits=packet_bits,
        distance_m=topology.tx_range())
    return BroadcastMetrics(
        topology=topology.name,
        num_nodes=topology.num_nodes,
        source=tuple(topology.coord(source_index)),
        tx=num_tx,
        rx=num_rx,
        duplicates=num_rx - num_first_rx,
        collisions=int(collisions),
        energy_j=energy,
        delay_slots=int(first_rx.max()) if all_reached else -1,
        reachability=float((first_rx >= 0).sum()) / topology.num_nodes,
        relay_count=int((tx_count > 0).sum()),
        retransmit_count=int((tx_count > 1).sum()),
    )


def compute_metrics(
    trace: BroadcastTrace,
    topology: Topology,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
    count_collided_rx_energy: bool = False,
) -> BroadcastMetrics:
    """Compute :class:`BroadcastMetrics` from a trace.

    Parameters
    ----------
    count_collided_rx_energy:
        If True, nodes also pay the reception energy for slots in which
        they heard a collision (the radio was listening even though the
        packet was garbled).  The paper does not charge this cost; the flag
        exists for the energy-accounting ablation.
    """
    energy = model.broadcast_energy(
        num_tx=trace.num_tx,
        num_rx=trace.num_rx,
        bits=packet_bits,
        distance_m=topology.tx_range(),
    )
    if count_collided_rx_energy:
        energy += trace.num_collisions * model.rx_energy(packet_bits)
    return BroadcastMetrics(
        topology=topology.name,
        num_nodes=trace.num_nodes,
        source=tuple(topology.coord(trace.source)),
        tx=trace.num_tx,
        rx=trace.num_rx,
        duplicates=trace.num_duplicate_rx,
        collisions=trace.num_collisions,
        energy_j=energy,
        delay_slots=trace.delay_slots,
        reachability=trace.reachability,
        relay_count=len({v for _, v in trace.tx_events}),
        retransmit_count=len(trace.retransmitting_nodes()),
    )
