"""Slot-synchronous broadcast simulator."""

from .engine import replay, replay_batch, run_reactive, run_reactive_batch
from .metrics import BroadcastMetrics, compute_metrics
from .reference import ReferenceSimulator
from .schedule import BroadcastSchedule
from .summary import TraceSummary
from .trace import BroadcastTrace

__all__ = [
    "BroadcastSchedule",
    "BroadcastTrace",
    "BroadcastMetrics",
    "ReferenceSimulator",
    "TraceSummary",
    "compute_metrics",
    "replay",
    "replay_batch",
    "run_reactive",
    "run_reactive_batch",
]
