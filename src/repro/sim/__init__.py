"""Slot-synchronous broadcast simulator."""

from .engine import replay, run_reactive
from .metrics import BroadcastMetrics, compute_metrics
from .reference import ReferenceSimulator
from .schedule import BroadcastSchedule
from .trace import BroadcastTrace

__all__ = [
    "BroadcastSchedule",
    "BroadcastTrace",
    "BroadcastMetrics",
    "ReferenceSimulator",
    "compute_metrics",
    "replay",
    "run_reactive",
]
