"""Slot-synchronous broadcast simulator."""

from .engine import (replay, replay_batch, run_reactive,
                     run_reactive_batch, run_reactive_multi)
from .metrics import (BroadcastMetrics, compute_metrics,
                      compute_metrics_from_counts)
from .recovery import (BatchRecoveryState, RecoveryPolicy, RecoveryState,
                       relay_like_from_schedule, relay_like_mask)
from .translate import (TranslationError, translate_compiled,
                        translate_plan, translate_schedule,
                        translate_trace)
from .reference import ReferenceSimulator
from .schedule import BroadcastSchedule
from .summary import TraceSummary
from .trace import BroadcastTrace

__all__ = [
    "BroadcastSchedule",
    "BroadcastTrace",
    "BroadcastMetrics",
    "ReferenceSimulator",
    "TraceSummary",
    "compute_metrics",
    "compute_metrics_from_counts",
    "replay",
    "replay_batch",
    "run_reactive",
    "run_reactive_batch",
    "run_reactive_multi",
    "RecoveryPolicy",
    "RecoveryState",
    "BatchRecoveryState",
    "relay_like_mask",
    "relay_like_from_schedule",
    "TranslationError",
    "translate_compiled",
    "translate_plan",
    "translate_schedule",
    "translate_trace",
]
