"""Slot-synchronous broadcast simulator."""

from .backend import (ENGINES, make_backend, packed_max_nodes,
                      resolve_engine)
from .engine import (replay, replay_batch, run_reactive,
                     run_reactive_batch, run_reactive_multi)
from .metrics import (BroadcastMetrics, compute_metrics,
                      compute_metrics_from_counts)
from .native import native_available, native_reason
from .recovery import (BatchRecoveryState, RecoveryPolicy, RecoveryState,
                       relay_like_from_schedule, relay_like_mask)
from .recovery_packed import NativeRecoveryState, PackedRecoveryState
from .shard import (replay_batch_sharded, run_reactive_batch_sharded,
                    shard_ranges)
from .translate import (TranslationError, translate_compiled,
                        translate_plan, translate_schedule,
                        translate_trace)
from .reference import ReferenceSimulator
from .schedule import BroadcastSchedule
from .summary import TraceSummary, merge_summaries
from .trace import BroadcastTrace

__all__ = [
    "BroadcastSchedule",
    "BroadcastTrace",
    "BroadcastMetrics",
    "ENGINES",
    "ReferenceSimulator",
    "TraceSummary",
    "compute_metrics",
    "compute_metrics_from_counts",
    "make_backend",
    "merge_summaries",
    "native_available",
    "native_reason",
    "packed_max_nodes",
    "replay",
    "replay_batch",
    "replay_batch_sharded",
    "resolve_engine",
    "run_reactive",
    "run_reactive_batch",
    "run_reactive_batch_sharded",
    "run_reactive_multi",
    "shard_ranges",
    "RecoveryPolicy",
    "RecoveryState",
    "BatchRecoveryState",
    "PackedRecoveryState",
    "NativeRecoveryState",
    "relay_like_mask",
    "relay_like_from_schedule",
    "TranslationError",
    "translate_compiled",
    "translate_plan",
    "translate_schedule",
    "translate_trace",
]
