"""Closed-loop recovery: overhear-ACKs, timeout/backoff retransmission,
Trickle-style suppression, and last-resort repair election.

The paper compiles relay schedules for a perfect channel; the robustness
module originally mitigated loss with *blind* ARQ (``harden_plan``
repeats every relay transmission unconditionally, paying the energy
whether or not a loss occurred).  This module adds the feedback-driven
alternative: relays retransmit *only where evidence says coverage
failed*, following the reliability/energy argument of Trickle-style
broadcast schemes (Meyfroyt et al.) — an extension beyond the paper,
clearly labelled as such in EXPERIMENTS.md.

Feedback model
--------------
Two (standard) feedback channels are assumed, neither of which occupies
a data slot:

* **link-layer ACKs** — a neighbour that cleanly decodes a data
  transmission acknowledges it in the guard interval of the same slot
  (802.15.4-style micro-slot ACK, assumed reliable *given* the data
  decode; a lost data packet produces no ACK).  The transmitter hence
  learns exactly which neighbours decoded *its own* packet.
* **implicit ACKs by overhearing** — a node that overhears a neighbour
  *transmit* the message (a clean decode attributing that sender) knows
  the neighbour holds it, even if its own transmission to that
  neighbour was lost.

Both reduce to one symmetric rule applied per clean decode ``(receiver
r, sender w)``: afterwards *w knows r is covered* (the ACK) and *r knows
w is covered* (the overhear).  Collisions deliver neither — a collided
slot yields no decode, no ACK, and no attribution, so collisions
genuinely blind the recovery layer, as they would a real radio.

Recovery state machine (identical in both engines)
--------------------------------------------------
Every node starts a **guardian episode** at its first transmission: a
coverage check is scheduled ``timeout`` slots later.  At a check the
guardian looks at its *uncovered set* — neighbours from which it holds
neither an ACK nor an overhear:

* uncovered set empty → the episode ends;
* otherwise the guardian retransmits in the check slot, unless the
  **suppression counter** cancels it: with ``suppression_k > 0``, a
  check that overheard >= k clean decodes since the previous check
  stays silent (the neighbourhood is already being repaired — Trickle's
  "polite gossip").  Either way the check consumes one unit of the
  ``max_retries`` budget and, if budget remains, the next check is
  scheduled ``timeout * backoff**retries_used`` slots later
  (exponential backoff).

**Repair election** is the last resort for a relay that died: a dead
relay never transmits, so its neighbours never overhear it.  A newly
informed non-relay node ``w`` picks its lowest-indexed still-unheard
relay neighbour ``u*`` and schedules a one-shot substitute transmission
at ``first_rx + timeout * (max_retries + 1) + rank(w, u*)`` — past the
ordinary retry window ("last resort"), staggered by ``w``'s rank in
``u*``'s neighbour list so concurrent candidates do not collide.  At
the elected slot ``w`` fires only if ``u*`` has *still* not been
overheard and the suppression counter permits; its transmission then
starts an ordinary guardian episode covering ``u*``'s neighbourhood.

All decisions are functions of per-slot simulation state, so the serial
engine (:class:`RecoveryState`, python sets and scalars) and the batched
Monte-Carlo engine (:class:`BatchRecoveryState`, ``(B, n)`` /
``(B, nnz)`` arrays over the CSR adjacency) implement the same machine
two independent ways; the differential suite proves trial *b* of a
batched run is trace-for-trace identical to the serial run with trial
*b*'s channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from .. import profiling
from ..topology.base import Topology

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Parameters of the closed-loop recovery layer.

    Attributes
    ----------
    timeout:
        Slots between a transmission and its first coverage check.
    max_retries:
        Recovery checks (== retransmission opportunities) per episode;
        0 disables guardian retransmissions entirely.
    backoff:
        Exponential backoff base: check *i* (1-based) is scheduled
        ``timeout * backoff**i`` slots after check *i-1*.
    suppression_k:
        Trickle suppression constant: a check that overheard >= k clean
        decodes since the previous check stays silent; 0 disables
        suppression (always retransmit while uncovered).
    election:
        Enable the last-resort repair election for dead relays.
    """

    timeout: int = 2
    max_retries: int = 3
    backoff: int = 2
    suppression_k: int = 2
    election: bool = True

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.suppression_k < 0:
            raise ValueError(
                f"suppression_k must be >= 0, got {self.suppression_k}")

    @property
    def election_delay(self) -> int:
        """Slots after ``first_rx`` before a substitute may fire."""
        return self.timeout * (self.max_retries + 1)

    def label(self) -> str:
        """Compact identifier used by sweeps and benchmark artefacts."""
        tag = (f"recovery-t{self.timeout}r{self.max_retries}"
               f"b{self.backoff}k{self.suppression_k}")
        return tag if self.election else tag + "-noelect"


def relay_like_mask(num_nodes: int, relay_mask: np.ndarray,
                    source: int) -> np.ndarray:
    """Expected-transmitter mask of a reactive run (relays + source).

    The election only monitors nodes *expected* to transmit: overhearing
    nothing from a non-relay neighbour is normal, not evidence of death.
    """
    mask = np.asarray(relay_mask, dtype=bool).copy()
    mask[source] = True
    return mask


def relay_like_from_schedule(num_nodes: int, schedule) -> np.ndarray:
    """Expected-transmitter mask of a replayed schedule."""
    mask = np.zeros(num_nodes, dtype=bool)
    for v in schedule.transmitting_nodes():
        mask[v] = True
    return mask


class RecoveryState:
    """One-trial recovery state machine (the serial engine's hook).

    Deliberately implemented with per-node python sets and scalar
    bookkeeping — structurally different from
    :class:`BatchRecoveryState` so the differential suite compares two
    genuinely independent implementations.
    """

    def __init__(self, topology: Topology, policy: RecoveryPolicy,
                 relay_like: np.ndarray) -> None:
        n = topology.num_nodes
        self.policy = policy
        self.n = n
        self.relay_like = [bool(b) for b in relay_like]
        self._nbrs: List[List[int]] = [
            sorted(int(u) for u in topology.neighbor_indices(v))
            for v in range(n)]
        # v -> set of neighbours v knows to hold the message
        self.known: List[Set[int]] = [set() for _ in range(n)]
        self.heard_total = [0] * n
        self.has_tx = [False] * n
        self.chk_slot = [0] * n       # 0 = no pending check
        self.chk_base = [0] * n
        self.retries_used = [0] * n
        self.elec_slot = [0] * n      # 0 = no pending election
        self.elec_base = [0] * n
        self.elec_target = [-1] * n
        self.horizon = 0

    # ------------------------------------------------------------------

    def pre_slot(self, t: int) -> Set[int]:
        """Process checks/elections due at *t*; return the retransmitters."""
        pol = self.policy
        out: Set[int] = set()
        for v in range(self.n):
            if self.chk_slot[v] == t:
                if len(self.known[v]) >= len(self._nbrs[v]):
                    self.chk_slot[v] = 0          # fully covered: done
                    continue
                heard = self.heard_total[v]
                suppressed = (pol.suppression_k > 0 and
                              heard - self.chk_base[v] >= pol.suppression_k)
                if not suppressed:
                    out.add(v)
                self.retries_used[v] += 1
                if self.retries_used[v] < pol.max_retries:
                    nxt = t + pol.timeout * pol.backoff ** self.retries_used[v]
                    self.chk_slot[v] = nxt
                    if nxt > self.horizon:
                        self.horizon = nxt
                else:
                    self.chk_slot[v] = 0
                self.chk_base[v] = heard
        for w in range(self.n):
            if self.elec_slot[w] == t:
                self.elec_slot[w] = 0             # one-shot
                if self.elec_target[w] in self.known[w]:
                    continue                      # target overheard after all
                if (pol.suppression_k > 0 and
                        self.heard_total[w] - self.elec_base[w]
                        >= pol.suppression_k):
                    continue                      # repairs already overheard
                out.add(w)
        return out

    def post_slot(self, t: int, tx_nodes: np.ndarray,
                  received: np.ndarray, senders: np.ndarray,
                  new_nodes: np.ndarray) -> None:
        """Account one resolved slot: ACKs/overhears, episode starts,
        election scheduling for the newly informed."""
        pol = self.policy
        rx_nodes = received.nonzero()[0]
        for r in rx_nodes:
            self.heard_total[r] += 1
        for r in rx_nodes:
            w = int(senders[r])
            self.known[w].add(int(r))             # link-layer ACK
            self.known[int(r)].add(w)             # implicit ACK (overhear)
        for v in tx_nodes:
            v = int(v)
            if not self.has_tx[v]:
                self.has_tx[v] = True
                if pol.max_retries > 0:
                    self.chk_slot[v] = t + pol.timeout
                    self.chk_base[v] = self.heard_total[v]
                    self.retries_used[v] = 0
                    if self.chk_slot[v] > self.horizon:
                        self.horizon = self.chk_slot[v]
        if pol.election:
            for w in new_nodes:
                w = int(w)
                if self.relay_like[w]:
                    continue
                target = -1
                for u in self._nbrs[w]:
                    if self.relay_like[u] and u not in self.known[w]:
                        target = u
                        break
                if target < 0:
                    continue
                rank = sum(1 for x in self._nbrs[target] if x < w)
                self.elec_slot[w] = t + pol.election_delay + rank
                self.elec_base[w] = self.heard_total[w]
                self.elec_target[w] = target
                if self.elec_slot[w] > self.horizon:
                    self.horizon = self.elec_slot[w]


class BatchRecoveryState:
    """B-trial recovery state machine (the batched engine's hook).

    Per-trial state lives in ``(B, n)`` arrays; the per-edge coverage
    knowledge in a ``(B, nnz)`` boolean over the CSR adjacency, with
    decode pairs mapped to edge positions by a binary search over the
    sorted ``row * n + col`` edge keys.  Row *b* evolves exactly like a
    :class:`RecoveryState` driven by trial *b*'s channel.
    """

    def __init__(self, topology: Topology, policy: RecoveryPolicy,
                 relay_like: np.ndarray, trials: int) -> None:
        kernel = topology.slot_kernel
        n = topology.num_nodes
        self.policy = policy
        self.n = n
        self.trials = trials
        self.relay_like = np.asarray(relay_like, dtype=bool)
        indptr, indices = kernel.indptr, kernel.indices
        degrees = np.diff(indptr)
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        keys = rows * n + indices
        self._key_order = np.argsort(keys, kind="stable")
        self._keys_sorted = keys[self._key_order]
        nnz = len(indices)
        maxdeg = int(degrees.max()) if n else 0
        # Padded per-node tables: edge positions, neighbour ids (pad = n,
        # a sentinel larger than any real node), and a validity mask.
        self._P = np.zeros((n, maxdeg), dtype=np.int64)
        self._N = np.full((n, maxdeg), n, dtype=np.int64)
        self._V = np.zeros((n, maxdeg), dtype=bool)
        for v in range(n):
            s, e = int(indptr[v]), int(indptr[v + 1])
            self._P[v, :e - s] = np.arange(s, e)
            self._N[v, :e - s] = indices[s:e]
            self._V[v, :e - s] = True
        self._relay_ext = np.append(self.relay_like, False)
        self.known = np.zeros((trials, nnz), dtype=bool)
        self.heard_total = np.zeros((trials, n), dtype=np.int64)
        self.has_tx = np.zeros((trials, n), dtype=bool)
        self.chk_slot = np.zeros((trials, n), dtype=np.int64)
        self.chk_base = np.zeros((trials, n), dtype=np.int64)
        self.retries_used = np.zeros((trials, n), dtype=np.int64)
        self.elec_slot = np.zeros((trials, n), dtype=np.int64)
        self.elec_base = np.zeros((trials, n), dtype=np.int64)
        self.elec_pos = np.zeros((trials, n), dtype=np.int64)
        self.horizon = 0

    def _edge_pos(self, row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """CSR data positions of the (row -> col) edges (must exist)."""
        return self._key_order[
            np.searchsorted(self._keys_sorted, row * self.n + col)]

    # ------------------------------------------------------------------

    def pre_slot(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Checks/elections due at *t*: returns retransmitting
        ``(trials, nodes)`` pair arrays."""
        pol = self.policy
        out_tr, out_nd = [], []
        bt, vt = (self.chk_slot == t).nonzero()
        if len(vt):
            covered = (self.known[bt[:, None], self._P[vt]]
                       | ~self._V[vt]).all(axis=1)
            self.chk_slot[bt[covered], vt[covered]] = 0
            abt, avt = bt[~covered], vt[~covered]
            if len(avt):
                heard = self.heard_total[abt, avt]
                if pol.suppression_k > 0:
                    fire = (heard - self.chk_base[abt, avt]
                            < pol.suppression_k)
                else:
                    fire = np.ones(len(avt), dtype=bool)
                out_tr.append(abt[fire])
                out_nd.append(avt[fire])
                used = self.retries_used[abt, avt] + 1
                self.retries_used[abt, avt] = used
                more = used < pol.max_retries
                nxt = t + pol.timeout * pol.backoff ** used
                self.chk_slot[abt, avt] = np.where(more, nxt, 0)
                self.chk_base[abt, avt] = heard
                if more.any():
                    self.horizon = max(self.horizon, int(nxt[more].max()))
        bt, wt = (self.elec_slot == t).nonzero()
        if len(wt):
            with profiling.phase("recovery-election"):
                self.elec_slot[bt, wt] = 0        # one-shot
                ok = ~self.known[bt, self.elec_pos[bt, wt]]
                if pol.suppression_k > 0:
                    ok &= (self.heard_total[bt, wt]
                           - self.elec_base[bt, wt] < pol.suppression_k)
                out_tr.append(bt[ok])
                out_nd.append(wt[ok])
        if not out_nd:
            return _EMPTY, _EMPTY
        return np.concatenate(out_tr), np.concatenate(out_nd)

    def post_slot(self, t: int, tr: np.ndarray, nd: np.ndarray,
                  rt: np.ndarray, rn: np.ndarray, sv: np.ndarray,
                  nt: np.ndarray, nn: np.ndarray) -> None:
        """Account one resolved batch slot (mirrors
        :meth:`RecoveryState.post_slot` trial-by-trial).

        The slot outcome arrives sparse — received pairs ``(rt, rn)``
        with their delivering senders *sv* — so the update cost scales
        with the slot's event count, not with ``B * n``.
        """
        pol = self.policy
        if len(rn):
            self.heard_total[rt, rn] += 1
            w = sv
            self.known[rt, self._edge_pos(w, rn)] = True   # ACK
            self.known[rt, self._edge_pos(rn, w)] = True   # overhear
        fresh = ~self.has_tx[tr, nd]
        if fresh.any():
            ft, fn = tr[fresh], nd[fresh]
            self.has_tx[ft, fn] = True
            if pol.max_retries > 0:
                self.chk_slot[ft, fn] = t + pol.timeout
                self.chk_base[ft, fn] = self.heard_total[ft, fn]
                self.retries_used[ft, fn] = 0
                self.horizon = max(self.horizon, t + pol.timeout)
        if pol.election and len(nn):
            with profiling.phase("recovery-election"):
                self._schedule_elections(t, nt, nn)

    def _schedule_elections(self, t: int, nt: np.ndarray,
                            nn: np.ndarray) -> None:
        pol = self.policy
        sel = ~self.relay_like[nn]
        et, en = nt[sel], nn[sel]
        if len(en):
            nb = self._N[en]
            cand = (self._V[en] & self._relay_ext[nb]
                    & ~self.known[et[:, None], self._P[en]])
            tgt = np.where(cand, nb, self.n).min(axis=1)
            has = tgt < self.n
            et, en, tgt = et[has], en[has], tgt[has]
            if len(en):
                rank = ((self._N[tgt] < en[:, None])
                        & self._V[tgt]).sum(axis=1)
                slot = t + pol.election_delay + rank
                self.elec_slot[et, en] = slot
                self.elec_base[et, en] = self.heard_total[et, en]
                self.elec_pos[et, en] = self._edge_pos(en, tgt)
                self.horizon = max(self.horizon, int(slot.max()))
