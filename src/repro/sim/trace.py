"""Execution traces of simulated broadcasts.

A :class:`BroadcastTrace` is the complete record of one simulated broadcast:
who transmitted when, who decoded what from whom, where collisions happened,
and when every node first obtained the message.  All paper metrics
(``T_x``, ``R_x``, power, delay, reachability) derive from the trace via
:mod:`repro.sim.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from .schedule import BroadcastSchedule


@dataclass
class BroadcastTrace:
    """Record of one simulated broadcast.

    Attributes
    ----------
    num_nodes:
        Network size.
    source:
        0-based source index.
    first_rx:
        Per-node slot of first successful reception; 0 for the source
        (it originates the message), -1 for nodes never reached.
    tx_events:
        ``(slot, node)`` pairs, chronological.
    rx_events:
        ``(slot, receiver, transmitter)`` of every successful decode,
        including duplicates.
    collision_events:
        ``(slot, node)`` where the node heard >= 2 transmitters.
    dropped_forced:
        Forced transmissions that could not happen because the node was not
        yet informed (diagnostic; empty for valid compiled schedules).
    """

    num_nodes: int
    source: int
    first_rx: np.ndarray
    tx_events: List[Tuple[int, int]] = field(default_factory=list)
    rx_events: List[Tuple[int, int, int]] = field(default_factory=list)
    collision_events: List[Tuple[int, int]] = field(default_factory=list)
    dropped_forced: List[Tuple[int, int]] = field(default_factory=list)

    # -- headline counts --------------------------------------------------

    @property
    def num_tx(self) -> int:
        """The paper's ``T_x``: total number of transmissions."""
        return len(self.tx_events)

    @property
    def num_rx(self) -> int:
        """The paper's ``R_x``: total successful receptions (incl. dups)."""
        return len(self.rx_events)

    @property
    def num_duplicate_rx(self) -> int:
        """Receptions by nodes that already had the message."""
        return self.num_rx - self.num_first_rx

    @property
    def num_first_rx(self) -> int:
        """Nodes (excluding the source) that received at least once."""
        return int((self.first_rx > 0).sum())

    @property
    def num_collisions(self) -> int:
        """Number of (node, slot) collision occurrences."""
        return len(self.collision_events)

    @property
    def delay_slots(self) -> int:
        """Broadcast delay: the slot in which the last node was informed.

        With the source transmitting in slot 1, this equals the number of
        time slots the broadcast occupies until full coverage.  -1 if the
        broadcast never completed.
        """
        if not self.all_reached:
            return -1
        return int(self.first_rx.max())

    @property
    def last_activity_slot(self) -> int:
        """Slot of the final transmission (>= delay_slots)."""
        if not self.tx_events:
            return 0
        return max(s for s, _ in self.tx_events)

    @property
    def reachability(self) -> float:
        """Fraction of nodes that obtained the message (source included)."""
        return float((self.first_rx >= 0).sum()) / self.num_nodes

    @property
    def all_reached(self) -> bool:
        """True iff 100 % reachability was achieved."""
        return bool((self.first_rx >= 0).all())

    def unreached_nodes(self) -> np.ndarray:
        """Indices of nodes that never obtained the message."""
        return np.nonzero(self.first_rx < 0)[0]

    # -- structure --------------------------------------------------------

    def as_schedule(self) -> BroadcastSchedule:
        """The transmissions of this trace as a static schedule."""
        # Engine-produced events are already validated (slot >= 1,
        # node >= 0), so group them straight into the slot map rather than
        # paying a checked add() per event — compile loops call this once
        # per fix round.
        sched = BroadcastSchedule()
        slot_map = sched._slots
        for slot, node in self.tx_events:
            nodes = slot_map.get(slot)
            if nodes is None:
                slot_map[slot] = {node}
            else:
                nodes.add(node)
        return sched

    def delivery_tree(self) -> Dict[int, int]:
        """Map ``receiver -> transmitter`` of each node's *first* reception.

        The source is absent from the map.  Because relays only transmit
        after first receiving, the map is a spanning tree of the informed
        subgraph rooted at the source.
        """
        tree: Dict[int, int] = {}
        seen = np.zeros(self.num_nodes, dtype=bool)
        seen[self.source] = True
        for slot, receiver, transmitter in self.rx_events:
            if not seen[receiver]:
                seen[receiver] = True
                tree[receiver] = transmitter
        return tree

    def tx_count_per_node(self) -> np.ndarray:
        """Number of transmissions performed by every node."""
        if not self.tx_events:
            return np.zeros(self.num_nodes, dtype=np.int64)
        nodes = np.fromiter((v for _, v in self.tx_events),
                            count=len(self.tx_events), dtype=np.int64)
        return np.bincount(nodes, minlength=self.num_nodes)

    def rx_count_per_node(self) -> np.ndarray:
        """Number of successful receptions per node (incl. duplicates)."""
        if not self.rx_events:
            return np.zeros(self.num_nodes, dtype=np.int64)
        nodes = np.fromiter((r for _, r, _ in self.rx_events),
                            count=len(self.rx_events), dtype=np.int64)
        return np.bincount(nodes, minlength=self.num_nodes)

    def retransmitting_nodes(self) -> List[int]:
        """Nodes that transmitted more than once (the paper's gray nodes)."""
        counts = self.tx_count_per_node()
        return [int(i) for i in np.nonzero(counts > 1)[0]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BroadcastTrace tx={self.num_tx} rx={self.num_rx} "
                f"reach={self.reachability:.3f} delay={self.delay_slots}>")
