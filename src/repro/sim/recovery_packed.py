"""Word-packed recovery state: the ``packed``/``compiled`` tier of the
closed-loop recovery layer.

:class:`~repro.sim.recovery.BatchRecoveryState` vectorises the recovery
machine over ``(B, nnz)`` boolean known-edge matrices, but three of its
costs scale badly on recovery-heavy cells and are identical under every
slot-resolve tier — the Amdahl bottleneck BENCH_kernel's
``recovery_grid`` exposed:

* every slot scans the full ``(B, n)`` ``chk_slot``/``elec_slot``
  arrays for due work (``== t`` + ``nonzero`` over B*n elements, twice,
  whether or not anything is due);
* every decode pair pays a ``searchsorted`` over the sorted ``row * n +
  col`` edge keys to find its CSR position;
* the per-check "all neighbours covered?" test gathers ``max_degree``
  booleans per (trial, node) pair.

This module removes all three while computing the *same state machine*
(:mod:`repro.sim.recovery` documents it; the differential suite holds
every tier to trace equality):

* **due buckets** — ``chk_slot``/``elec_slot`` stay the source of truth,
  but every assignment also appends the (trial, node) pair to a
  ``slot -> pairs`` bucket; ``pre_slot`` pops its bucket and drops the
  stale entries (``chk_slot[b, v] != t``), so the per-slot cost scales
  with the *due* count, not ``B * n``.  A pair's scheduled slots are
  strictly increasing (episodes start once, reschedules move forward),
  so a bucket never holds duplicates;
* **edge-keyed word bitset** — the known-edge state is ``(B,
  ceil(nnz/64))`` uint64 words, bit ``e & 63`` of word ``e >> 6`` for
  CSR data position *e* (:mod:`repro.radio.bitpack` layout over edge
  positions instead of node ids).  The ACK/overhear pair of a decode is
  two bits: the (receiver -> sender) position falls out of the packed
  sender attribution for free, and the (sender -> receiver) position is
  one precomputed ``rev_edge`` lookup.  A node's coverage test is an
  exact mask compare over the <= 2 words its contiguous CSR row spans;
* **C fast path** — :class:`NativeRecoveryState` dispatches the two hot
  inner loops (per-decode bit sets + heard counters, per-check
  covered/suppression/reschedule) to the cffi kernel's
  ``recovery_post_slot``/``recovery_checks`` (see
  :mod:`repro.sim.native`), behind the same lazy-build /
  ``REPRO_NO_NATIVE`` fallback chain as the slot resolve.  Election
  bookkeeping is shared numpy in both classes — elections fire at most
  once per (trial, node) and never dominate.

Instances are built by the slot-resolve backends
(:meth:`~repro.sim.backend.PackedBackend.make_recovery`), which also
feed ``post_slot`` the attribution edge positions; ``epos=None``
recomputes them from the padded neighbour tables so the class stays
usable standalone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import profiling
from ..radio.bitpack import BIT, num_words
from ..topology.base import Topology
from .recovery import RecoveryPolicy

__all__ = ["NativeRecoveryState", "PackedRecoveryState"]

_EMPTY = np.empty(0, dtype=np.int64)
_U64 = np.uint64
_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


class PackedRecoveryState:
    """B-trial recovery state over a word-packed known-edge bitset.

    Bit-identical to :class:`~repro.sim.recovery.BatchRecoveryState` by
    construction: same per-(trial, node) scalars, same update order,
    same horizon growth — only the known-edge representation and the
    due-work discovery differ.
    """

    def __init__(self, topology: Topology, policy: RecoveryPolicy,
                 relay_like: np.ndarray, trials: int) -> None:
        kernel = topology.slot_kernel
        n = topology.num_nodes
        self.policy = policy
        self.n = n
        self.trials = trials
        self.relay_like = np.asarray(relay_like, dtype=bool)
        indptr = np.ascontiguousarray(kernel.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(kernel.indices, dtype=np.int64)
        self._indptr = indptr
        nnz = len(indices)
        self.words_e = max(num_words(nnz), 1)
        degrees = np.diff(indptr)
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        # Reverse-edge table: the CSR position of (col -> row) for each
        # (row -> col) data position.  The adjacency is symmetric, so
        # every reversed key exists; one argsort + searchsorted at init
        # replaces the per-slot searchsorted of the dense batch state.
        keys = rows * n + indices
        order = np.argsort(keys, kind="stable")
        self.rev_edge = np.ascontiguousarray(
            order[np.searchsorted(keys[order], indices * n + rows)])
        # Coverage masks: node v is covered iff every bit of its
        # contiguous CSR range [indptr[v], indptr[v+1]) is set, i.e. a
        # word-masked compare over the <= ceil(max_degree/64)+1 words
        # the range spans.
        s, e = indptr[:-1], indptr[1:]
        w0 = s >> 6
        w1 = np.maximum(e - 1, s) >> 6
        span = int((w1 - w0 + 1).max()) if n else 1
        j = np.arange(span, dtype=np.int64)
        w = w0[:, None] + j[None, :]
        valid = (w <= w1[:, None]) & (e > s)[:, None]
        lo = np.maximum(s[:, None], w << 6)
        hi = np.minimum(e[:, None], (w + 1) << 6)
        length = np.maximum(hi - lo, 0)
        lc = np.clip(length, 1, 64).astype(np.uint64)  # dodge >>64 UB
        mask = ((_ALL_ONES >> (np.uint64(64) - lc))
                << (lo & 63).astype(np.uint64))
        self._cov_w = np.where(valid, w, 0)
        self._cov_m = np.where(valid & (length > 0), mask, _U64(0))
        # Padded per-node neighbour tables (election target search and
        # the epos fallback); vectorised build, pad sentinel n.
        maxdeg = int(degrees.max()) if n else 0
        jd = np.arange(max(maxdeg, 1), dtype=np.int64)
        dvalid = jd[None, :] < degrees[:, None]
        pos = np.minimum(s[:, None] + jd[None, :], max(nnz - 1, 0))
        self._P = np.where(dvalid, pos, 0)
        self._N = np.where(dvalid, indices[pos] if nnz else 0, n)
        self._V = dvalid
        self._relay_ext = np.append(self.relay_like, False)
        self.known = np.zeros((trials, self.words_e), dtype=np.uint64)
        self.heard_total = np.zeros((trials, n), dtype=np.int64)
        self.has_tx = np.zeros((trials, n), dtype=bool)
        self.chk_slot = np.zeros((trials, n), dtype=np.int64)
        self.chk_base = np.zeros((trials, n), dtype=np.int64)
        self.retries_used = np.zeros((trials, n), dtype=np.int64)
        self.elec_slot = np.zeros((trials, n), dtype=np.int64)
        self.elec_base = np.zeros((trials, n), dtype=np.int64)
        self.elec_pos = np.zeros((trials, n), dtype=np.int64)
        self.horizon = 0
        self._chk_due: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        self._elec_due: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}

    # ------------------------------------------------------------------

    def _pop_due(self, due: Dict[int, List[Tuple[np.ndarray, np.ndarray]]],
                 slots: np.ndarray, t: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Pop bucket *t* and drop entries whose slot moved or cleared."""
        entries = due.pop(t, None)
        if not entries:
            return _EMPTY, _EMPTY
        if len(entries) == 1:
            bt, vt = entries[0]
        else:
            bt = np.concatenate([p[0] for p in entries])
            vt = np.concatenate([p[1] for p in entries])
        live = slots[bt, vt] == t
        if live.all():
            return bt, vt
        return bt[live], vt[live]

    def _push_due(self, due: Dict[int, List[Tuple[np.ndarray, np.ndarray]]],
                  bt: np.ndarray, vt: np.ndarray,
                  slots: np.ndarray) -> None:
        """Bucket (trial, node) pairs by their per-pair due *slots*."""
        for s in np.unique(slots):
            sel = slots == s
            due.setdefault(int(s), []).append((bt[sel], vt[sel]))

    def _edge_bit(self, bt: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Known-bit test of CSR edge positions *pos* in trials *bt*."""
        return ((self.known[bt, pos >> 6]
                 >> (pos & 63).astype(np.uint64)) & _U64(1)).astype(bool)

    def _epos_of(self, rn: np.ndarray, sv: np.ndarray) -> np.ndarray:
        """CSR positions of the (rn -> sv) edges (epos fallback)."""
        match = self._N[rn] == sv[:, None]
        return np.where(match, self._P[rn], 0).sum(axis=1)

    # ------------------------------------------------------------------

    def _process_checks(self, t: int, bt: np.ndarray, vt: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Guardian checks due at *t*: covered test, suppression,
        retry accounting, rescheduling.  Returns the firing pairs."""
        pol = self.policy
        cw = self._cov_w[vt]
        cm = self._cov_m[vt]
        covered = ((self.known[bt[:, None], cw] & cm) == cm).all(axis=1)
        self.chk_slot[bt[covered], vt[covered]] = 0
        abt, avt = bt[~covered], vt[~covered]
        if not len(avt):
            return _EMPTY, _EMPTY
        heard = self.heard_total[abt, avt]
        if pol.suppression_k > 0:
            fire = heard - self.chk_base[abt, avt] < pol.suppression_k
        else:
            fire = np.ones(len(avt), dtype=bool)
        used = self.retries_used[abt, avt] + 1
        self.retries_used[abt, avt] = used
        more = used < pol.max_retries
        nxt = t + pol.timeout * pol.backoff ** used
        self.chk_slot[abt, avt] = np.where(more, nxt, 0)
        self.chk_base[abt, avt] = heard
        if more.any():
            self._push_due(self._chk_due, abt[more], avt[more], nxt[more])
            self.horizon = max(self.horizon, int(nxt[more].max()))
        return abt[fire], avt[fire]

    def pre_slot(self, t: int) -> Tuple[np.ndarray, np.ndarray]:
        """Checks/elections due at *t*: returns retransmitting
        ``(trials, nodes)`` pair arrays (order unspecified; the engine
        dedup-sorts recovery pairs)."""
        pol = self.policy
        out_tr, out_nd = [], []
        bt, vt = self._pop_due(self._chk_due, self.chk_slot, t)
        if len(vt):
            fb, fv = self._process_checks(t, bt, vt)
            if len(fv):
                out_tr.append(fb)
                out_nd.append(fv)
        bt, wt = self._pop_due(self._elec_due, self.elec_slot, t)
        if len(wt):
            with profiling.phase("recovery-election"):
                self.elec_slot[bt, wt] = 0        # one-shot
                ok = ~self._edge_bit(bt, self.elec_pos[bt, wt])
                if pol.suppression_k > 0:
                    ok &= (self.heard_total[bt, wt]
                           - self.elec_base[bt, wt] < pol.suppression_k)
                out_tr.append(bt[ok])
                out_nd.append(wt[ok])
        if not out_nd:
            return _EMPTY, _EMPTY
        return np.concatenate(out_tr), np.concatenate(out_nd)

    # ------------------------------------------------------------------

    def _apply_rx(self, rt: np.ndarray, rn: np.ndarray,
                  epos: np.ndarray) -> None:
        """Account the slot's decodes: heard counters plus the
        ACK/overhear bit pair per (receiver, sender) edge."""
        self.heard_total[rt, rn] += 1
        # Both directions of every decoded edge, OR-combined per
        # (trial, word) cell: group-by via one radix-friendly argsort,
        # bitwise_or.reduceat per group, then a single scatter into the
        # flat word array (group keys are unique, so plain |= is safe).
        both_e = np.concatenate([epos, self.rev_edge[epos]])
        key = (np.concatenate([rt, rt]) * self.words_e) + (both_e >> 6)
        order = np.argsort(key, kind="stable")
        ks = key[order]
        vals = BIT[both_e[order] & 63]
        starts = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
        self.known.reshape(-1)[ks[starts]] |= np.bitwise_or.reduceat(
            vals, starts)

    def post_slot(self, t: int, tr: np.ndarray, nd: np.ndarray,
                  rt: np.ndarray, rn: np.ndarray, sv: np.ndarray,
                  nt: np.ndarray, nn: np.ndarray,
                  epos: Optional[np.ndarray] = None) -> None:
        """Account one resolved batch slot (mirrors
        :meth:`~repro.sim.recovery.BatchRecoveryState.post_slot`).

        *epos* are the CSR positions of the (receiver -> sender) edges,
        as produced by the backends' sender attribution; ``None``
        recomputes them from the padded neighbour tables.
        """
        pol = self.policy
        if len(rn):
            if epos is None:
                epos = self._epos_of(rn, sv)
            self._apply_rx(rt, rn, np.asarray(epos, dtype=np.int64))
        fresh = ~self.has_tx[tr, nd]
        if fresh.any():
            ft, fn = tr[fresh], nd[fresh]
            self.has_tx[ft, fn] = True
            if pol.max_retries > 0:
                due = t + pol.timeout
                self.chk_slot[ft, fn] = due
                self.chk_base[ft, fn] = self.heard_total[ft, fn]
                self.retries_used[ft, fn] = 0
                self._chk_due.setdefault(due, []).append((ft, fn))
                self.horizon = max(self.horizon, due)
        if pol.election and len(nn):
            with profiling.phase("recovery-election"):
                self._schedule_elections(t, nt, nn)

    def _schedule_elections(self, t: int, nt: np.ndarray,
                            nn: np.ndarray) -> None:
        """Schedule one-shot substitute transmissions for newly informed
        non-relays with an unheard relay-like neighbour."""
        pol = self.policy
        sel = ~self.relay_like[nn]
        et, en = nt[sel], nn[sel]
        if not len(en):
            return
        nb = self._N[en]
        pb = self._P[en]
        cand = (self._V[en] & self._relay_ext[nb]
                & ~self._edge_bit(et[:, None], pb))
        tgt = np.where(cand, nb, self.n).min(axis=1)
        has = tgt < self.n
        et, en, tgt = et[has], en[has], tgt[has]
        if not len(en):
            return
        rank = ((self._N[tgt] < en[:, None]) & self._V[tgt]).sum(axis=1)
        slot = t + pol.election_delay + rank
        self.elec_slot[et, en] = slot
        self.elec_base[et, en] = self.heard_total[et, en]
        self.elec_pos[et, en] = np.where(self._N[en] == tgt[:, None],
                                         self._P[en], 0).sum(axis=1)
        self._push_due(self._elec_due, et, en, slot)
        self.horizon = max(self.horizon, int(slot.max()))


class NativeRecoveryState(PackedRecoveryState):
    """:class:`PackedRecoveryState` with the two hot inner loops — the
    per-decode known-bit/heard update and the per-check
    covered/suppression/reschedule pass — dispatched to the cffi
    kernel.  Election bookkeeping stays the shared numpy path.

    ``threads`` is the kernel pool width (see
    :func:`~repro.sim.native.resolve_native_threads`); the C side
    splits decodes at trial boundaries and checks into contiguous
    unique-pair spans, so the updated state and emitted pairs are
    bit-identical at every width."""

    def __init__(self, topology: Topology, policy: RecoveryPolicy,
                 relay_like: np.ndarray, trials: int, module,
                 threads: Optional[int] = None) -> None:
        super().__init__(topology, policy, relay_like, trials)
        from .native import resolve_native_threads
        self.threads = resolve_native_threads(threads)
        self._ffi, self._lib = module.ffi, module.lib
        ffi = self._ffi

        def pin(array, ctype):
            return array, ffi.cast(ctype, ffi.from_buffer(array))

        # The state arrays are allocated once in __init__ and never
        # reallocated, so the pinned views stay valid for the run.
        self._c_known = pin(self.known, "uint64_t *")
        self._c_heard = pin(self.heard_total, "int64_t *")
        self._c_chk_slot = pin(self.chk_slot, "int64_t *")
        self._c_chk_base = pin(self.chk_base, "int64_t *")
        self._c_retries = pin(self.retries_used, "int64_t *")
        self._c_indptr = pin(self._indptr, "const int64_t *")
        self._c_rev = pin(self.rev_edge, "const int64_t *")
        self._c_counts = pin(np.zeros(3, dtype=np.int64), "int64_t *")

    def _as_i64(self, array: np.ndarray):
        array = np.ascontiguousarray(array, dtype=np.int64)
        return array, self._ffi.cast("const int64_t *",
                                     self._ffi.from_buffer(array))

    def _apply_rx(self, rt: np.ndarray, rn: np.ndarray,
                  epos: np.ndarray) -> None:
        kt, pt = self._as_i64(rt)
        kn, pn = self._as_i64(rn)
        ke, pe = self._as_i64(epos)
        self._lib.recovery_post_slot(
            self.threads,
            len(kn), pt, pn, pe, self._c_rev[1],
            self.n, self.words_e, self._c_known[1], self._c_heard[1])

    def _process_checks(self, t: int, bt: np.ndarray, vt: np.ndarray
                        ) -> Tuple[np.ndarray, np.ndarray]:
        pol = self.policy
        k = len(vt)
        kb, pb = self._as_i64(bt)
        kv, pv = self._as_i64(vt)
        fire_b = np.empty(k, dtype=np.int64)
        fire_v = np.empty(k, dtype=np.int64)
        res_b = np.empty(k, dtype=np.int64)
        res_v = np.empty(k, dtype=np.int64)
        res_slot = np.empty(k, dtype=np.int64)
        ffi, out = self._ffi, self._c_counts
        cast = lambda a: ffi.cast("int64_t *", ffi.from_buffer(a))
        self._lib.recovery_checks(
            self.threads,
            t, k, pb, pv, self.n, self.words_e, self._c_indptr[1],
            self._c_known[1], self._c_chk_slot[1], self._c_chk_base[1],
            self._c_retries[1], self._c_heard[1],
            pol.timeout, pol.max_retries, pol.backoff, pol.suppression_k,
            cast(fire_b), cast(fire_v),
            cast(res_b), cast(res_v), cast(res_slot), out[1])
        n_fire, n_res, max_slot = map(int, out[0])
        if n_res:
            self._push_due(self._chk_due, res_b[:n_res].copy(),
                           res_v[:n_res].copy(), res_slot[:n_res])
            self.horizon = max(self.horizon, max_slot)
        return fire_b[:n_fire], fire_v[:n_fire]
