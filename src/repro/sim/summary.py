"""Aggregate trial summaries: broadcast statistics without event logs.

A :class:`TraceSummary` is the lightweight output mode of the batched
Monte-Carlo engine (:func:`repro.sim.engine.run_reactive_batch` /
:func:`repro.sim.engine.replay_batch`).  Aggregate consumers — the
loss/failure degradation curves, lifetime estimation, sensitivity grids —
only ever reduce a trace to per-trial scalars (reachability, ``T_x``,
collision counts) or per-node counts (energy accounting), so
materialising the full per-event tuple lists of a
:class:`~repro.sim.trace.BroadcastTrace` for every trial is pure
overhead.  The summary keeps exactly the arrays those consumers read,
laid out trial-major so statistics are single numpy reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np


@dataclass
class TraceSummary:
    """Per-trial aggregates of a batch of B simulated broadcasts.

    Attributes
    ----------
    num_nodes:
        Network size ``n``.
    source:
        0-based source index (shared by every trial).
    trials:
        Batch size ``B``.
    first_rx:
        ``(B, n)`` slot of first successful reception per trial and node;
        0 for the source, -1 for nodes never reached.
    tx_count:
        ``(B, n)`` transmissions performed per trial and node.
    rx_count:
        ``(B, n)`` successful receptions per trial and node (incl. dups).
    collisions:
        ``(B,)`` number of (node, slot) collision occurrences per trial.
    dropped_forced:
        Per-trial lists of ``(slot, node)`` forced transmissions that
        could not fire (diagnostic; empty for valid compiled schedules).
    """

    num_nodes: int
    source: int
    trials: int
    first_rx: np.ndarray
    tx_count: np.ndarray
    rx_count: np.ndarray
    collisions: np.ndarray
    dropped_forced: List[List[Tuple[int, int]]] = field(default_factory=list)

    # -- per-trial headline statistics ------------------------------------

    @property
    def num_tx(self) -> np.ndarray:
        """``(B,)`` total transmissions per trial (the paper's ``T_x``)."""
        return self.tx_count.sum(axis=1)

    @property
    def num_rx(self) -> np.ndarray:
        """``(B,)`` total successful receptions per trial (``R_x``)."""
        return self.rx_count.sum(axis=1)

    @property
    def reachability(self) -> np.ndarray:
        """``(B,)`` fraction of nodes informed per trial (source incl.)."""
        return (self.first_rx >= 0).sum(axis=1) / float(self.num_nodes)

    def live_reachability(self, dead_masks: np.ndarray) -> np.ndarray:
        """``(B,)`` fraction of *surviving* nodes informed per trial."""
        live = ~np.asarray(dead_masks, dtype=bool)
        reached = (self.first_rx >= 0) & live
        return reached.sum(axis=1) / live.sum(axis=1)

    @property
    def delay_slots(self) -> np.ndarray:
        """``(B,)`` slot of last first-reception; -1 if incomplete."""
        delays = self.first_rx.max(axis=1)
        delays[(self.first_rx < 0).any(axis=1)] = -1
        return delays

    @property
    def all_reached(self) -> np.ndarray:
        """``(B,)`` True where the trial achieved 100 % reachability."""
        return (self.first_rx >= 0).all(axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        reach = self.reachability
        return (f"<TraceSummary trials={self.trials} "
                f"mean_reach={float(reach.mean()):.3f} "
                f"mean_tx={float(self.num_tx.mean()):.1f}>")


def merge_summaries(parts: Sequence[TraceSummary]) -> TraceSummary:
    """Concatenate contiguous trial shards of one run back together.

    *parts* must be the shards of a single batch in trial order (the
    output of :mod:`repro.sim.shard`); the merge stacks the per-trial
    arrays, so the result is bit-identical to the unsharded run's
    summary.  Per-trial sources (``run_reactive_multi``) concatenate;
    a shared scalar source must agree across shards.
    """
    if not parts:
        raise ValueError("merge_summaries needs at least one shard")
    if len(parts) == 1:
        return parts[0]
    head = parts[0]
    if any(p.num_nodes != head.num_nodes for p in parts):
        raise ValueError("shards disagree on num_nodes")
    if np.ndim(head.source) == 0:
        if any(np.ndim(p.source) != 0 or p.source != head.source
               for p in parts):
            raise ValueError("shards disagree on the source")
        source = head.source
    else:
        source = np.concatenate([p.source for p in parts])
    dropped: List[List[Tuple[int, int]]] = []
    for p in parts:
        dropped.extend(p.dropped_forced)
    return TraceSummary(
        num_nodes=head.num_nodes,
        source=source,
        trials=sum(p.trials for p in parts),
        first_rx=np.vstack([p.first_rx for p in parts]),
        tx_count=np.vstack([p.tx_count for p in parts]),
        rx_count=np.vstack([p.rx_count for p in parts]),
        collisions=np.concatenate([p.collisions for p in parts]),
        dropped_forced=dropped)
