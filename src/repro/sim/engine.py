"""Slot-synchronous broadcast simulation engine.

Two execution modes:

* :func:`run_reactive` — drives the *wave* semantics of the paper's
  protocols: a designated relay transmits one slot after it first
  successfully receives the message (plus an optional per-node extra delay,
  e.g. the 3D-6 z-relay staggering), optionally repeating its transmission
  a fixed number of slots later (the paper's designated retransmitters),
  and optional *forced* transmissions at absolute slots (repair
  retransmissions added by the schedule compiler).

* :func:`replay` — executes a fixed :class:`BroadcastSchedule` verbatim.
  Used to audit compiled schedules: the replayed trace must achieve 100 %
  reachability and respect causality (see :mod:`repro.core.validate`).

Both modes also exist *trial-batched* — :func:`run_reactive_batch` and
:func:`replay_batch` advance B independent Monte-Carlo trials (same plan,
per-trial loss/failure realisations) together, resolving each slot for
the whole batch in one CSR gather + 2-D bincount
(:meth:`~repro.radio.channel.SlotKernel.resolve_batch`) and tracking
per-trial frontiers under a shared max-slot horizon.  Every batched trial
is trace-for-trace identical to a serial run with the same per-trial
seed; the differential suite pins that down.  Aggregate consumers pass
``summary=True`` to get a :class:`~repro.sim.summary.TraceSummary`
(first_rx / tx / rx counts / collisions only) and skip per-event tuple
materialisation entirely.

Both produce a full :class:`~repro.sim.trace.BroadcastTrace` under the
collision model of :mod:`repro.radio.channel`.

This is the *vectorised* production path: every slot is resolved by the
batched :class:`~repro.radio.channel.SlotKernel` (one CSR gather + two
bincounts, with sender attribution computed for all receivers in the same
pass), events accumulate into preallocated, geometrically grown numpy
buffers rather than per-event list appends, and the reactive scheduler
tracks the maximum scheduled slot instead of rescanning the pending map
every slot.  The unoptimised oracle lives in :mod:`repro.sim.reference`;
the differential test-suite proves the two produce identical traces.
"""

from __future__ import annotations

import functools

from typing import (Dict, Iterable, List, Mapping, Optional, Sequence, Set,
                    Tuple, Union)

import numpy as np

from .. import profiling
from ..radio.impairments import BatchLoss, LossProcess
from ..topology.base import Topology
from .backend import (BREAKER, BackendFault, check_engine, demote_tier,
                      make_backend)
from .recovery import (BatchRecoveryState, RecoveryPolicy, RecoveryState,
                       relay_like_from_schedule, relay_like_mask)
from .schedule import BroadcastSchedule
from .summary import TraceSummary
from .trace import BroadcastTrace


def _normalize_forced(forced_tx: Optional[Mapping[int, Iterable[int]]]
                      ) -> Dict[int, Set[int]]:
    out: Dict[int, Set[int]] = {}
    if forced_tx:
        for slot, nodes in forced_tx.items():
            if slot < 1:
                raise ValueError(f"forced slots are 1-based, got {slot}")
            out[int(slot)] = {int(v) for v in nodes}
    return out


class _EventLog:
    """Preallocated, geometrically grown (slot, ...) event buffer.

    Events land in int64 numpy rows during the simulation; the python
    tuple lists of :class:`BroadcastTrace` are materialised once at the
    end (``tolist`` converts at C speed), so the hot loop never performs
    per-event list appends.
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, columns: int, capacity: int = 128) -> None:
        self._buf = np.empty((capacity, columns), dtype=np.int64)
        self._len = 0

    def extend(self, slot: int, *columns: np.ndarray) -> None:
        k = len(columns[0])
        if k == 0:
            return
        need = self._len + k
        if need > self._buf.shape[0]:
            grown = np.empty((max(2 * self._buf.shape[0], need),
                              self._buf.shape[1]), dtype=np.int64)
            grown[:self._len] = self._buf[:self._len]
            self._buf = grown
        rows = self._buf[self._len:need]
        rows[:, 0] = slot
        for j, col in enumerate(columns, start=1):
            rows[:, j] = col
        self._len = need

    def tuples(self) -> List[tuple]:
        return list(map(tuple, self._buf[:self._len].tolist()))


def run_reactive(
    topology: Topology,
    source: int,
    relay_mask: np.ndarray,
    *,
    extra_delay: Optional[np.ndarray] = None,
    repeat_offsets: Optional[Mapping[int, Tuple[int, ...]]] = None,
    forced_tx: Optional[Mapping[int, Iterable[int]]] = None,
    max_slots: Optional[int] = None,
    dead_mask: Optional[np.ndarray] = None,
    loss: Optional["LossProcess"] = None,
    recovery: Optional[RecoveryPolicy] = None,
) -> BroadcastTrace:
    """Run a reactive relay wave and return its trace.

    Parameters
    ----------
    topology:
        The network.
    source:
        0-based index of the originating node (always transmits, whether or
        not flagged in *relay_mask*).
    relay_mask:
        Boolean array; True for nodes that relay the message (transmit once,
        one slot after their first successful reception).
    extra_delay:
        Optional int array of additional slots each relay waits beyond the
        default ``first_rx + 1`` (paper: z-relays in the source plane wait
        one extra slot; border relays in Fig. 9 wait two).
    repeat_offsets:
        ``node -> (off1, off2, ...)``: after the node's first transmission
        at slot ``s`` it transmits again at ``s + off`` for each offset
        (the paper's designated retransmitters use ``(1,)``).
    forced_tx:
        ``slot -> nodes`` absolute extra transmissions (compiler repairs).
        A forced transmission is dropped (and recorded in
        ``trace.dropped_forced``) if the node is not informed before that
        slot — a compiled schedule must never trigger this.
    max_slots:
        Safety bound; defaults to ``4 * num_nodes + 16``.
    dead_mask:
        Optional boolean array of failed nodes: they never transmit and
        never receive (fault-injection extension).
    loss:
        Optional :class:`~repro.radio.impairments.LossProcess` erasing
        successful decodes after collision resolution.
    recovery:
        Optional :class:`~repro.sim.recovery.RecoveryPolicy` enabling the
        closed-loop recovery layer (overhear-ACKs, timeout/backoff
        retransmission, suppression, repair election).
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if dead_mask is not None:
        dead_mask = np.asarray(dead_mask, dtype=bool)
        if dead_mask.shape != (n,):
            raise ValueError(f"dead_mask must have shape ({n},)")
        if dead_mask[source]:
            raise ValueError("the source node cannot be dead")
    relay_mask = np.asarray(relay_mask, dtype=bool)
    if relay_mask.shape != (n,):
        raise ValueError(f"relay_mask must have shape ({n},)")
    if extra_delay is None:
        extra_delay = np.zeros(n, dtype=np.int64)
    else:
        extra_delay = np.asarray(extra_delay, dtype=np.int64)
        if extra_delay.shape != (n,):
            raise ValueError(f"extra_delay must have shape ({n},)")
        if (extra_delay < 0).any():
            raise ValueError("extra_delay must be non-negative")
    repeats = dict(repeat_offsets or {})
    for offs in repeats.values():
        for off in offs:
            if off < 1:
                raise ValueError(f"repeat offsets must be >= 1, got {off}")
    forced = _normalize_forced(forced_tx)
    if max_slots is None:
        # cover the natural wave plus any far-future forced transmissions
        max_slots = max(4 * n + 16, max(forced, default=0) + 2)

    kernel = topology.slot_kernel
    first_rx = np.full(n, -1, dtype=np.int64)
    first_rx[source] = 0
    tx_log = _EventLog(2)
    rx_log = _EventLog(3)
    coll_log = _EventLog(2)
    dropped_forced: List[Tuple[int, int]] = []

    alive_mask = None if dead_mask is None else ~dead_mask
    pending: Dict[int, Set[int]] = {}
    # Every scheduled slot is strictly in the future of the slot that
    # created it, so tracking the maximum scheduled slot replaces the
    # O(slots) "any future work?" rescan of the pending/forced maps.
    horizon = max(forced, default=0)

    repeats_get = repeats.get
    pending_setdefault = pending.setdefault

    def schedule_node(v: int, base_slot: int) -> None:
        """Schedule v's transmission(s) starting at *base_slot*."""
        nonlocal horizon
        pending_setdefault(base_slot, set()).add(v)
        last = base_slot
        for off in repeats_get(v, ()):
            s = base_slot + off
            pending_setdefault(s, set()).add(v)
            if s > last:
                last = s
        if last > horizon:
            horizon = last

    schedule_node(source, 1 + int(extra_delay[source]))

    rec = None
    if recovery is not None:
        rec = RecoveryState(topology, recovery,
                            relay_like_mask(n, relay_mask, source))

    t = 0
    while t < max_slots and (t < horizon
                             or (rec is not None and t < rec.horizon)):
        t += 1
        tx_set = pending.pop(t, set())
        for v in sorted(forced.pop(t, ())):
            if 0 <= first_rx[v] < t:
                tx_set.add(v)
            else:
                dropped_forced.append((t, int(v)))
        if dead_mask is not None:
            tx_set = {v for v in tx_set if not dead_mask[v]}
        if rec is not None:
            # Recovery retransmitters are informed (hence alive) by
            # construction, so joining after the dead filter is safe.
            tx_set |= rec.pre_slot(t)
        if not tx_set:
            continue
        _execute_slot(kernel, t, tx_set, first_rx,
                      tx_log, rx_log, coll_log,
                      relay_mask, extra_delay, schedule_node,
                      alive_mask=alive_mask, loss=loss, recovery=rec)
    return BroadcastTrace(
        num_nodes=n, source=source, first_rx=first_rx,
        tx_events=tx_log.tuples(), rx_events=rx_log.tuples(),
        collision_events=coll_log.tuples(), dropped_forced=dropped_forced)


def replay(topology: Topology, schedule: BroadcastSchedule,
           source: int,
           dead_mask: Optional[np.ndarray] = None,
           loss: Optional["LossProcess"] = None,
           *,
           recovery: Optional[RecoveryPolicy] = None,
           max_slots: Optional[int] = None) -> BroadcastTrace:
    """Execute a fixed schedule verbatim and return the trace.

    *dead_mask* / *loss* inject faults into the replay: failed nodes
    neither transmit nor receive, and the loss process erases decodes.
    A fault-injected replay also drops the transmissions of nodes that
    (because of the faults) never obtained the message — a real node
    cannot forward a packet it does not hold.

    With *recovery*, the closed-loop recovery layer runs on top of the
    schedule: scheduled transmitters double as recovery guardians, and
    the replay continues past the schedule horizon while repairs are
    pending (bounded by *max_slots*, default ``4 * n + 16``).
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if dead_mask is not None:
        dead_mask = np.asarray(dead_mask, dtype=bool)
        if dead_mask.shape != (n,):
            raise ValueError(f"dead_mask must have shape ({n},)")
    kernel = topology.slot_kernel
    first_rx = np.full(n, -1, dtype=np.int64)
    first_rx[source] = 0
    tx_log = _EventLog(2)
    rx_log = _EventLog(3)
    coll_log = _EventLog(2)
    alive_mask = None if dead_mask is None else ~dead_mask
    faulty = dead_mask is not None or loss is not None
    rec = None
    bound = schedule.max_slot
    slots: Iterable[int] = schedule.active_slots()
    if recovery is not None:
        rec = RecoveryState(topology, recovery,
                            relay_like_from_schedule(n, schedule))
        if max_slots is None:
            max_slots = max(4 * n + 16, bound + 2)
        # Recovery inserts transmissions into arbitrary slots (and past
        # the schedule horizon), so walk every slot up to the bound.
        slots = _replay_recovery_slots(bound, max_slots, rec)
    for t in slots:
        tx_set = schedule.transmitters(t)
        if dead_mask is not None:
            tx_set = {v for v in tx_set if not dead_mask[v]}
        if faulty:
            # a node that never received cannot forward
            tx_set = {v for v in tx_set
                      if v == source or 0 <= first_rx[v] < t}
        if rec is not None:
            tx_set |= rec.pre_slot(t)
        if not tx_set:
            continue
        _execute_slot(kernel, t, tx_set, first_rx,
                      tx_log, rx_log, coll_log,
                      relay_mask=None, extra_delay=None, schedule_node=None,
                      alive_mask=alive_mask, loss=loss, recovery=rec)
    return BroadcastTrace(
        num_nodes=n, source=source, first_rx=first_rx,
        tx_events=tx_log.tuples(), rx_events=rx_log.tuples(),
        collision_events=coll_log.tuples())


def _replay_recovery_slots(sched_horizon: int, max_slots: int,
                           rec) -> Iterable[int]:
    """Slot counter of a recovery-enabled replay: runs while scheduled
    *or* recovery work remains, re-reading the recovery horizon (which
    grows as episodes are scheduled) each slot."""
    t = 0
    while t < max_slots and (t < sched_horizon or t < rec.horizon):
        t += 1
        yield t


_EMPTY = np.empty(0, dtype=np.int64)


def _resolve_trials(trials: Optional[int],
                    dead_masks: Optional[np.ndarray],
                    loss: Optional[BatchLoss],
                    num_nodes: int) -> Tuple[int, Optional[np.ndarray]]:
    """Infer/validate the batch size B and normalise *dead_masks*."""
    if dead_masks is not None:
        dead_masks = np.asarray(dead_masks, dtype=bool)
        if dead_masks.ndim != 2 or dead_masks.shape[1] != num_nodes:
            raise ValueError(
                f"dead_masks must have shape (trials, {num_nodes})")
    candidates = []
    if trials is not None:
        candidates.append(int(trials))
    if loss is not None:
        candidates.append(int(loss.trials))
    if dead_masks is not None:
        candidates.append(int(dead_masks.shape[0]))
    if not candidates:
        raise ValueError(
            "cannot infer the batch size: pass trials=, a BatchLoss, or "
            "a (trials, n) dead_masks array")
    b = candidates[0]
    if any(c != b for c in candidates[1:]):
        raise ValueError(
            f"inconsistent batch sizes: trials={trials}, "
            f"loss={'-' if loss is None else loss.trials}, "
            f"dead_masks={'-' if dead_masks is None else dead_masks.shape}")
    if b < 1:
        raise ValueError("need at least one trial")
    return b, dead_masks


class _BatchState:
    """Shared accumulation state of one batched simulation.

    Owns the (B, n) per-trial arrays and either the per-event logs (full
    trace mode) or the count matrices (summary mode), so the reactive and
    replay drivers share one slot-commit implementation.
    """

    def __init__(self, num_nodes: int, source: Union[int, np.ndarray],
                 trials: int, summary: bool) -> None:
        self.n = num_nodes
        self.source = source
        self.trials = trials
        self.summary = summary
        self.first_rx = np.full((trials, num_nodes), -1, dtype=np.int64)
        if np.ndim(source) == 0:
            self.first_rx[:, int(source)] = 0
        else:
            # Per-trial sources (run_reactive_multi): trial b originates
            # at its own node.
            self.first_rx[np.arange(trials), source] = 0
        self.dropped_forced: List[List[Tuple[int, int]]] = [
            [] for _ in range(trials)]
        if summary:
            self.tx_count = np.zeros((trials, num_nodes), dtype=np.int64)
            self.rx_count = np.zeros((trials, num_nodes), dtype=np.int64)
            self.collisions = np.zeros(trials, dtype=np.int64)
        else:
            self.tx_log = _EventLog(3)    # slot, trial, node
            self.rx_log = _EventLog(4)    # slot, trial, receiver, sender
            self.coll_log = _EventLog(3)  # slot, trial, node

    def commit_slot(self, t: int, tr: np.ndarray, nd: np.ndarray,
                    received: np.ndarray, collided: np.ndarray,
                    senders: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray,
                               np.ndarray, np.ndarray]:
        """Log one dense-resolved slot; returns ``(rt, rn, nt, nn)``:
        the received and the newly informed (trial, node) pairs, both
        row-major, i.e. sorted by trial then node."""
        rt, rn = received.nonzero()
        if self.summary:
            # (tr, nd) and (rt, rn) pairs are unique within a slot, so
            # plain fancy-index increments suffice (no np.add.at).
            self.tx_count[tr, nd] += 1
            self.rx_count[rt, rn] += 1
            self.collisions += collided.sum(axis=1)
        else:
            self.tx_log.extend(t, tr, nd)
            ct, cn = collided.nonzero()
            self.coll_log.extend(t, ct, cn)
            self.rx_log.extend(t, rt, rn, senders[rt, rn])
        new = self.first_rx[rt, rn] < 0
        nt, nn = rt[new], rn[new]
        self.first_rx[nt, nn] = t
        return rt, rn, nt, nn

    def commit_sparse(self, t: int, tr: np.ndarray, nd: np.ndarray,
                      rt: np.ndarray, rn: np.ndarray,
                      sv: Optional[np.ndarray],
                      coll: Union[np.ndarray,
                                  Tuple[np.ndarray, np.ndarray]]
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Log one backend-resolved slot from sparse outcomes.

        ``(rt, rn)`` are the received pairs in (trial, node) order with
        senders *sv* (required in trace mode); *coll* is the per-trial
        collision-count vector (summary mode) or ``(ct, cn)`` collision
        pairs (trace mode).  Returns the newly informed pairs.
        """
        if self.summary:
            self.tx_count[tr, nd] += 1
            self.rx_count[rt, rn] += 1
            self.collisions += coll
        else:
            self.tx_log.extend(t, tr, nd)
            ct, cn = coll
            self.coll_log.extend(t, ct, cn)
            self.rx_log.extend(t, rt, rn, sv)
        new = self.first_rx[rt, rn] < 0
        nt, nn = rt[new], rn[new]
        self.first_rx[nt, nn] = t
        return nt, nn

    def finish(self) -> Union[TraceSummary, List[BroadcastTrace]]:
        if self.summary:
            return TraceSummary(
                num_nodes=self.n, source=self.source, trials=self.trials,
                first_rx=self.first_rx, tx_count=self.tx_count,
                rx_count=self.rx_count, collisions=self.collisions,
                dropped_forced=self.dropped_forced)
        traces = []
        tx_buf = self.tx_log._buf[:self.tx_log._len]
        rx_buf = self.rx_log._buf[:self.rx_log._len]
        coll_buf = self.coll_log._buf[:self.coll_log._len]
        scalar_source = np.ndim(self.source) == 0
        for b in range(self.trials):
            # Rows were appended slot-by-slot with intra-slot (trial,
            # node) ordering, so a per-trial extraction preserves exactly
            # the serial engine's chronological, node-sorted event order.
            tx = tx_buf[tx_buf[:, 1] == b][:, (0, 2)]
            rx = rx_buf[rx_buf[:, 1] == b][:, (0, 2, 3)]
            coll = coll_buf[coll_buf[:, 1] == b][:, (0, 2)]
            traces.append(BroadcastTrace(
                num_nodes=self.n,
                source=int(self.source) if scalar_source
                else int(self.source[b]),
                first_rx=self.first_rx[b].copy(),
                tx_events=list(map(tuple, tx.tolist())),
                rx_events=list(map(tuple, rx.tolist())),
                collision_events=list(map(tuple, coll.tolist())),
                dropped_forced=self.dropped_forced[b]))
        return traces


def _backend_resolve(backend, t, tr, nd):
    """One backend slot-resolve, faults tagged with the tier that died.

    Any exception out of a word-space backend mid-run (injected via
    :data:`repro.faults.BACKEND_RESOLVE` or organic — a dlopen gone bad,
    a C kernel segfault surfacing as an ffi error) becomes a
    :class:`~repro.sim.backend.BackendFault` so the demotion wrapper can
    rerun the whole batch one tier down.
    """
    try:
        return backend.resolve(t, tr, nd)
    except Exception as exc:
        raise BackendFault(backend.name, exc) from exc


def _run_reactive_batch_impl(
    topology: Topology,
    source: int,
    relay_mask: np.ndarray,
    *,
    extra_delay: Optional[np.ndarray] = None,
    repeat_offsets: Optional[Mapping[int, Tuple[int, ...]]] = None,
    forced_tx: Optional[Mapping[int, Iterable[int]]] = None,
    max_slots: Optional[int] = None,
    dead_masks: Optional[np.ndarray] = None,
    loss: Optional[BatchLoss] = None,
    trials: Optional[int] = None,
    summary: bool = False,
    recovery: Optional[RecoveryPolicy] = None,
    engine: str = "batch",
    threads: Optional[int] = None,
) -> Union[TraceSummary, List[BroadcastTrace]]:
    """Run B independent reactive relay waves batched slot-by-slot.

    Every trial executes the same relay plan (*relay_mask*,
    *extra_delay*, *repeat_offsets*, *forced_tx*) and recovery policy,
    but its own channel realisation: row *b* of *dead_masks* and trial
    *b* of the :class:`~repro.radio.impairments.BatchLoss`.  Trial *b*'s
    outcome is trace-for-trace identical to::

        run_reactive(topology, source, relay_mask, ...,
                     dead_mask=dead_masks[b], loss=loss.trial_loss(b),
                     recovery=recovery)

    The batch size is inferred from *trials*, *loss* or *dead_masks*
    (which must agree).  With ``summary=False`` the result is a list of B
    :class:`~repro.sim.trace.BroadcastTrace`; with ``summary=True`` a
    :class:`~repro.sim.summary.TraceSummary` holding only the aggregate
    arrays (no per-event tuples are materialised).

    *engine* selects the slot-resolve tier (see :mod:`repro.sim.
    backend`): ``"batch"`` (dense, default), ``"packed"``,
    ``"compiled"``, or ``"auto"`` — all bit-identical.  *threads* sets
    the compiled tier's in-process kernel pool width (``None`` = all
    allowed cores; ignored by the numpy tiers); every width is
    bit-identical too.
    """
    check_engine(engine)
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    batch, dead_masks = _resolve_trials(trials, dead_masks, loss, n)
    if dead_masks is not None and dead_masks[:, source].any():
        raise ValueError("the source node cannot be dead")
    relay_mask = np.asarray(relay_mask, dtype=bool)
    if relay_mask.shape != (n,):
        raise ValueError(f"relay_mask must have shape ({n},)")
    if extra_delay is None:
        extra_delay = np.zeros(n, dtype=np.int64)
    else:
        extra_delay = np.asarray(extra_delay, dtype=np.int64)
        if extra_delay.shape != (n,):
            raise ValueError(f"extra_delay must have shape ({n},)")
        if (extra_delay < 0).any():
            raise ValueError("extra_delay must be non-negative")
    repeats = dict(repeat_offsets or {})
    # Repeats regrouped by offset: scheduling a batch of newly informed
    # relays is then one boolean gather per distinct offset instead of a
    # per-node python loop.
    offset_nodes: Dict[int, np.ndarray] = {}
    for v, offs in repeats.items():
        for off in offs:
            if off < 1:
                raise ValueError(f"repeat offsets must be >= 1, got {off}")
            offset_nodes.setdefault(int(off),
                                    np.zeros(n, dtype=bool))[int(v)] = True
    forced = _normalize_forced(forced_tx)
    if max_slots is None:
        max_slots = max(4 * n + 16, max(forced, default=0) + 2)

    kernel = topology.slot_kernel
    state = _BatchState(n, source, batch, summary)
    alive_masks = None if dead_masks is None else ~dead_masks
    backend = make_backend(kernel, batch, engine, loss, alive_masks,
                           need_senders=not summary
                           or recovery is not None,
                           need_coll_pairs=not summary,
                           threads=threads)

    pending: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
    horizon = max(forced, default=0)

    def schedule_pairs(tr: np.ndarray, nd: np.ndarray,
                       base: np.ndarray) -> None:
        """Schedule (trial, node) pairs firing at per-pair *base* slots,
        plus each node's repeat transmissions."""
        nonlocal horizon
        last = int(base.max())
        for s in np.unique(base):
            sel = base == s
            pending.setdefault(int(s), []).append((tr[sel], nd[sel]))
        for off, mask in offset_nodes.items():
            has = mask[nd]
            if has.any():
                rep_base = base[has] + off
                rep_tr, rep_nd = tr[has], nd[has]
                for s in np.unique(rep_base):
                    sel = rep_base == s
                    pending.setdefault(int(s), []).append(
                        (rep_tr[sel], rep_nd[sel]))
                last = max(last, int(rep_base.max()))
        if last > horizon:
            horizon = last

    all_trials = np.arange(batch, dtype=np.int64)
    schedule_pairs(all_trials,
                   np.full(batch, source, dtype=np.int64),
                   np.full(batch, 1 + int(extra_delay[source]),
                           dtype=np.int64))

    rec = None
    if recovery is not None:
        relay_like = relay_like_mask(n, relay_mask, source)
        if backend is not None:
            # The word-space backends own a recovery tier matched to
            # their resolve tier (bit-identical to BatchRecoveryState).
            rec = backend.make_recovery(topology, recovery, relay_like,
                                        batch)
        else:
            rec = BatchRecoveryState(topology, recovery, relay_like,
                                     batch)

    t = 0
    while t < max_slots and (t < horizon
                             or (rec is not None and t < rec.horizon)):
        t += 1
        entries = pending.pop(t, None)
        if entries:
            tr = np.concatenate([e[0] for e in entries])
            nd = np.concatenate([e[1] for e in entries])
        else:
            tr, nd = _EMPTY, _EMPTY
        # Each pending entry is a subset of a sorted-unique commit, so
        # a lone entry needs no dedup pass below.
        segments = len(entries) if entries else 0
        forced_now = forced.pop(t, None)
        if forced_now:
            fv = np.fromiter(sorted(forced_now), count=len(forced_now),
                             dtype=np.int64)
            frx = state.first_rx[:, fv]
            ok = (frx >= 0) & (frx < t)
            ok_t, ok_j = ok.nonzero()
            tr = np.concatenate([tr, ok_t])
            nd = np.concatenate([nd, fv[ok_j]])
            segments += 1
            for b, j in zip(*(~ok).nonzero()):
                state.dropped_forced[b].append((t, int(fv[j])))
        if rec is not None:
            with profiling.phase("recovery-pre"):
                r_tr, r_nd = rec.pre_slot(t)
            if len(r_nd):
                tr = np.concatenate([tr, r_tr])
                nd = np.concatenate([nd, r_nd])
                # Recovery pairs carry no sortedness guarantee of their
                # own, so they always force the dedup pass.
                segments += 2
        if len(nd) == 0:
            continue
        if segments > 1:
            # A node can be both pending and forced in the same slot;
            # the serial engine's per-slot *set* collapses that, so
            # dedup here.  np.unique also yields the (trial, node)-
            # sorted order the event logs rely on.
            key = np.unique(tr * n + nd)
            tr, nd = key // n, key % n
        if dead_masks is not None:
            keep = ~dead_masks[tr, nd]
            tr, nd = tr[keep], nd[keep]
        if len(nd) == 0:
            continue
        if backend is not None:
            rt, rn, sv, coll = _backend_resolve(backend, t, tr, nd)
            with profiling.phase("commit"):
                nt, nn = state.commit_sparse(t, tr, nd, rt, rn, sv, coll)
        else:
            _, received, collided, senders = kernel.resolve_batch(
                nd, tr, batch)
            if alive_masks is not None:
                received &= alive_masks
                collided &= alive_masks
            if loss is not None:
                with profiling.phase("loss-rng"):
                    received = loss.apply_batch(t, received)
            with profiling.phase("commit"):
                rt, rn, nt, nn = state.commit_slot(
                    t, tr, nd, received, collided, senders)
            sv = senders[rt, rn] if rec is not None else None
        if len(nn):
            rel = relay_mask[nn]
            if rel.any():
                rel_t, rel_n = nt[rel], nn[rel]
                schedule_pairs(rel_t, rel_n,
                               t + 1 + extra_delay[rel_n])
        if rec is not None:
            with profiling.phase("recovery-post"):
                if backend is not None:
                    rec.post_slot(t, tr, nd, rt, rn, sv, nt, nn,
                                  epos=backend.last_epos)
                else:
                    rec.post_slot(t, tr, nd, rt, rn, sv, nt, nn)
    if backend is not None:
        BREAKER.record_success(backend.name)
    return state.finish()


def run_reactive_multi(
    topology: Topology,
    sources: np.ndarray,
    relay_masks: np.ndarray,
    *,
    extra_delays: Optional[np.ndarray] = None,
    repeat_offsets_list: Optional[
        Sequence[Mapping[int, Tuple[int, ...]]]] = None,
    forced_tx_list: Optional[
        Sequence[Optional[Mapping[int, Iterable[int]]]]] = None,
    max_slots: Optional[int] = None,
    summary: bool = False,
) -> Union[TraceSummary, List[BroadcastTrace]]:
    """Run B reactive waves with *per-trial* sources and relay plans.

    Where :func:`run_reactive_batch` varies the channel realisation under
    one shared plan, this entry point varies the *broadcast itself*: trial
    *b* originates at ``sources[b]`` and executes relay plan row *b*
    (``relay_masks[b]``, ``extra_delays[b]``, ``repeat_offsets_list[b]``)
    plus its own forced transmissions ``forced_tx_list[b]``.  This is the
    engine under the symmetry-reduced sweep: one equivalence class of
    source positions advances through a single CSR gather + bincount per
    slot instead of B separate python slot loops.

    Trial *b* is trace-for-trace identical to::

        run_reactive(topology, sources[b], relay_masks[b],
                     extra_delay=extra_delays[b],
                     repeat_offsets=repeat_offsets_list[b],
                     forced_tx=forced_tx_list[b])

    including the serial engine's per-trial ``max_slots`` default (each
    trial is cut off at its own bound, which depends on its forced set),
    dropped-forced bookkeeping, and intra-slot node-sorted event order.
    With ``summary=True`` the result is a
    :class:`~repro.sim.summary.TraceSummary` whose ``source`` attribute
    is the per-trial ``(B,)`` source array.
    """
    n = topology.num_nodes
    sources = np.asarray(sources, dtype=np.int64)
    if sources.ndim != 1 or len(sources) < 1:
        raise ValueError("sources must be a non-empty 1-D index array")
    if ((sources < 0) | (sources >= n)).any():
        raise ValueError("source index out of range")
    batch = len(sources)
    relay_masks = np.asarray(relay_masks, dtype=bool)
    if relay_masks.shape != (batch, n):
        raise ValueError(f"relay_masks must have shape ({batch}, {n})")
    if extra_delays is None:
        extra_delays = np.zeros((batch, n), dtype=np.int64)
    else:
        extra_delays = np.asarray(extra_delays, dtype=np.int64)
        if extra_delays.shape != (batch, n):
            raise ValueError(
                f"extra_delays must have shape ({batch}, {n})")
        if (extra_delays < 0).any():
            raise ValueError("extra_delay must be non-negative")
    offset_masks: Dict[int, np.ndarray] = {}
    if repeat_offsets_list is not None:
        if len(repeat_offsets_list) != batch:
            raise ValueError("repeat_offsets_list must have one entry "
                             "per trial")
        for b, repeats in enumerate(repeat_offsets_list):
            for v, offs in (repeats or {}).items():
                for off in offs:
                    if off < 1:
                        raise ValueError(
                            f"repeat offsets must be >= 1, got {off}")
                    offset_masks.setdefault(
                        int(off),
                        np.zeros((batch, n), dtype=bool))[b, int(v)] = True

    # Per-trial forced transmissions, pre-grouped by slot into (trial,
    # node) arrays; nodes ascend within a trial so dropped-forced entries
    # append in the serial engine's sorted order.
    forced_at: Dict[int, List[Tuple[int, int]]] = {}
    limit = np.full(batch, 4 * n + 16, dtype=np.int64)
    if forced_tx_list is not None:
        if len(forced_tx_list) != batch:
            raise ValueError("forced_tx_list must have one entry per trial")
        for b, forced_tx in enumerate(forced_tx_list):
            forced = _normalize_forced(forced_tx)
            if forced:
                limit[b] = max(limit[b], max(forced) + 2)
            for slot, nodes in forced.items():
                forced_at.setdefault(slot, []).extend(
                    (b, v) for v in sorted(nodes))
    if max_slots is not None:
        limit[:] = max_slots

    kernel = topology.slot_kernel
    state = _BatchState(n, sources, batch, summary)

    pending: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
    horizon = max(forced_at, default=0)

    def schedule_pairs(tr: np.ndarray, nd: np.ndarray,
                       base: np.ndarray) -> None:
        nonlocal horizon
        last = int(base.max())
        for s in np.unique(base):
            sel = base == s
            pending.setdefault(int(s), []).append((tr[sel], nd[sel]))
        for off, mask in offset_masks.items():
            has = mask[tr, nd]
            if has.any():
                rep_base = base[has] + off
                rep_tr, rep_nd = tr[has], nd[has]
                for s in np.unique(rep_base):
                    sel = rep_base == s
                    pending.setdefault(int(s), []).append(
                        (rep_tr[sel], rep_nd[sel]))
                last = max(last, int(rep_base.max()))
        if last > horizon:
            horizon = last

    all_trials = np.arange(batch, dtype=np.int64)
    schedule_pairs(all_trials, sources,
                   1 + extra_delays[all_trials, sources])

    max_limit = int(limit.max())
    t = 0
    while t < max_limit and t < horizon:
        t += 1
        entries = pending.pop(t, None)
        if entries:
            tr = np.concatenate([e[0] for e in entries])
            nd = np.concatenate([e[1] for e in entries])
        else:
            tr, nd = _EMPTY, _EMPTY
        # Per-trial cutoff: the serial engine stops trial b's slot loop at
        # its own max_slots bound, so events past it must neither execute
        # nor be recorded as dropped.
        keep = limit[tr] >= t
        if not keep.all():
            tr, nd = tr[keep], nd[keep]
        forced_now = forced_at.pop(t, None)
        if forced_now:
            f_tr = np.fromiter((b for b, _ in forced_now),
                               count=len(forced_now), dtype=np.int64)
            f_nd = np.fromiter((v for _, v in forced_now),
                               count=len(forced_now), dtype=np.int64)
            in_limit = limit[f_tr] >= t
            f_tr, f_nd = f_tr[in_limit], f_nd[in_limit]
            frx = state.first_rx[f_tr, f_nd]
            ok = (frx >= 0) & (frx < t)
            tr = np.concatenate([tr, f_tr[ok]])
            nd = np.concatenate([nd, f_nd[ok]])
            for j in (~ok).nonzero()[0]:
                state.dropped_forced[int(f_tr[j])].append(
                    (t, int(f_nd[j])))
        if len(nd) == 0:
            continue
        key = np.unique(tr * n + nd)
        tr, nd = key // n, key % n
        _, received, collided, senders = kernel.resolve_batch(nd, tr, batch)
        _, _, nt, nn = state.commit_slot(t, tr, nd, received, collided,
                                         senders)
        if len(nn):
            rel = relay_masks[nt, nn]
            if rel.any():
                rel_t, rel_n = nt[rel], nn[rel]
                schedule_pairs(rel_t, rel_n,
                               t + 1 + extra_delays[rel_t, rel_n])
    return state.finish()


def _replay_batch_impl(
    topology: Topology,
    schedule: BroadcastSchedule,
    source: int,
    dead_masks: Optional[np.ndarray] = None,
    loss: Optional[BatchLoss] = None,
    trials: Optional[int] = None,
    summary: bool = False,
    recovery: Optional[RecoveryPolicy] = None,
    max_slots: Optional[int] = None,
    engine: str = "batch",
    threads: Optional[int] = None,
) -> Union[TraceSummary, List[BroadcastTrace]]:
    """Execute a fixed schedule for B fault realisations batched together.

    Trial *b* is trace-for-trace identical to
    ``replay(topology, schedule, source, dead_mask=dead_masks[b],
    loss=loss.trial_loss(b), recovery=recovery)``; see
    :func:`run_reactive_batch` for the batch-size, output, *engine* and
    *threads* conventions and :func:`replay` for the recovery
    semantics.
    """
    check_engine(engine)
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    batch, dead_masks = _resolve_trials(trials, dead_masks, loss, n)
    kernel = topology.slot_kernel
    state = _BatchState(n, source, batch, summary)
    alive_masks = None if dead_masks is None else ~dead_masks
    backend = make_backend(kernel, batch, engine, loss, alive_masks,
                           need_senders=not summary
                           or recovery is not None,
                           need_coll_pairs=not summary,
                           threads=threads)
    faulty = dead_masks is not None or loss is not None
    all_trials = np.arange(batch, dtype=np.int64)
    rec = None
    slots: Iterable[int] = schedule.active_slots()
    if recovery is not None:
        relay_like = relay_like_from_schedule(n, schedule)
        if backend is not None:
            rec = backend.make_recovery(topology, recovery, relay_like,
                                        batch)
        else:
            rec = BatchRecoveryState(topology, recovery, relay_like,
                                     batch)
        if max_slots is None:
            max_slots = max(4 * n + 16, schedule.max_slot + 2)
        slots = _replay_recovery_slots(schedule.max_slot, max_slots, rec)
    for t in slots:
        base = np.fromiter(sorted(schedule.transmitters(t)),
                           dtype=np.int64)
        if len(base) == 0:
            tr, nd = _EMPTY, _EMPTY
        elif faulty:
            frx = state.first_rx[:, base]
            # a node that never received cannot forward
            ok = (base == source)[None, :] | ((frx >= 0) & (frx < t))
            if dead_masks is not None:
                ok &= alive_masks[:, base]
            tr, j = ok.nonzero()
            nd = base[j]
        else:
            tr = all_trials.repeat(len(base))
            nd = np.tile(base, batch)
        if rec is not None:
            with profiling.phase("recovery-pre"):
                r_tr, r_nd = rec.pre_slot(t)
            if len(r_nd):
                # Recovery pairs can duplicate scheduled transmissions;
                # the serial engine's per-slot set collapses that, so
                # dedup (np.unique also restores (trial, node) order).
                key = np.unique(np.concatenate([tr * n + nd,
                                                r_tr * n + r_nd]))
                tr, nd = key // n, key % n
        if len(nd) == 0:
            continue
        if backend is not None:
            rt, rn, sv, coll = _backend_resolve(backend, t, tr, nd)
            with profiling.phase("commit"):
                nt, nn = state.commit_sparse(t, tr, nd, rt, rn, sv, coll)
        else:
            _, received, collided, senders = kernel.resolve_batch(
                nd, tr, batch)
            if alive_masks is not None:
                received &= alive_masks
                collided &= alive_masks
            if loss is not None:
                with profiling.phase("loss-rng"):
                    received = loss.apply_batch(t, received)
            with profiling.phase("commit"):
                rt, rn, nt, nn = state.commit_slot(
                    t, tr, nd, received, collided, senders)
            sv = senders[rt, rn] if rec is not None else None
        if rec is not None:
            with profiling.phase("recovery-post"):
                if backend is not None:
                    rec.post_slot(t, tr, nd, rt, rn, sv, nt, nn,
                                  epos=backend.last_epos)
                else:
                    rec.post_slot(t, tr, nd, rt, rn, sv, nt, nn)
    if backend is not None:
        BREAKER.record_success(backend.name)
    return state.finish()


def _with_tier_demotion(impl):
    """Public face of a batched run: retry one tier down on backend fault.

    The engine tiers are bit-identical, so rerunning a faulted batch at
    the demoted tier produces exactly the answer the failed tier would
    have; the caller never sees the fault.  Each demotion feeds the
    circuit breaker (:data:`~repro.sim.backend.BREAKER`), so a tier that
    keeps dying gets skipped up front by :func:`~repro.sim.backend.
    resolve_engine` — with the reason surfaced in the CLI
    engine-decision line.  The ladder is finite (compiled -> packed ->
    batch, and the dense tier has no backend to fault), so the loop
    terminates.
    """
    @functools.wraps(impl)
    def run(*args, **kwargs):
        while True:
            try:
                return impl(*args, **kwargs)
            except BackendFault as fault:
                kwargs["engine"] = demote_tier(
                    fault.tier, f"{type(fault.cause).__name__}: "
                                f"{fault.cause}")
    return run


run_reactive_batch = _with_tier_demotion(_run_reactive_batch_impl)
run_reactive_batch.__name__ = run_reactive_batch.__qualname__ = \
    "run_reactive_batch"
replay_batch = _with_tier_demotion(_replay_batch_impl)
replay_batch.__name__ = replay_batch.__qualname__ = "replay_batch"


def _execute_slot(kernel, t: int, tx_set: Set[int],
                  first_rx: np.ndarray,
                  tx_log: _EventLog, rx_log: _EventLog, coll_log: _EventLog,
                  relay_mask: Optional[np.ndarray],
                  extra_delay: Optional[np.ndarray],
                  schedule_node,
                  alive_mask: Optional[np.ndarray] = None,
                  loss: Optional["LossProcess"] = None,
                  recovery: Optional[RecoveryState] = None) -> None:
    """Resolve one slot, log its events, and (reactive mode) schedule the
    transmissions of newly informed relays."""
    tx_nodes = np.fromiter(tx_set, count=len(tx_set), dtype=np.int64)
    tx_nodes.sort()
    _, received, collided, senders = kernel.resolve(tx_nodes)
    if alive_mask is not None:
        received &= alive_mask
        collided &= alive_mask
    if loss is not None:
        received = loss.apply(t, received)

    tx_log.extend(t, tx_nodes)
    coll_log.extend(t, collided.nonzero()[0])

    rx_nodes = received.nonzero()[0]
    rx_log.extend(t, rx_nodes, senders[rx_nodes])
    new_nodes = rx_nodes[first_rx[rx_nodes] < 0]
    if len(new_nodes):
        first_rx[new_nodes] = t
        if relay_mask is not None:
            for v in new_nodes[relay_mask[new_nodes]]:
                schedule_node(int(v), t + 1 + int(extra_delay[v]))
    if recovery is not None:
        # senders is the kernel's scratch buffer — consumed immediately.
        recovery.post_slot(t, tx_nodes, received, senders, new_nodes)
