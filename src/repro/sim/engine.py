"""Slot-synchronous broadcast simulation engine.

Two execution modes:

* :func:`run_reactive` — drives the *wave* semantics of the paper's
  protocols: a designated relay transmits one slot after it first
  successfully receives the message (plus an optional per-node extra delay,
  e.g. the 3D-6 z-relay staggering), optionally repeating its transmission
  a fixed number of slots later (the paper's designated retransmitters),
  and optional *forced* transmissions at absolute slots (repair
  retransmissions added by the schedule compiler).

* :func:`replay` — executes a fixed :class:`BroadcastSchedule` verbatim.
  Used to audit compiled schedules: the replayed trace must achieve 100 %
  reachability and respect causality (see :mod:`repro.core.validate`).

Both produce a full :class:`~repro.sim.trace.BroadcastTrace` under the
collision model of :mod:`repro.radio.channel`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

import numpy as np

from ..radio.channel import resolve_slot, unique_transmitter
from ..radio.impairments import LossProcess
from ..topology.base import Topology
from .schedule import BroadcastSchedule
from .trace import BroadcastTrace


def _normalize_forced(forced_tx: Optional[Mapping[int, Iterable[int]]]
                      ) -> Dict[int, Set[int]]:
    out: Dict[int, Set[int]] = {}
    if forced_tx:
        for slot, nodes in forced_tx.items():
            if slot < 1:
                raise ValueError(f"forced slots are 1-based, got {slot}")
            out[int(slot)] = {int(v) for v in nodes}
    return out


def run_reactive(
    topology: Topology,
    source: int,
    relay_mask: np.ndarray,
    *,
    extra_delay: Optional[np.ndarray] = None,
    repeat_offsets: Optional[Mapping[int, Tuple[int, ...]]] = None,
    forced_tx: Optional[Mapping[int, Iterable[int]]] = None,
    max_slots: Optional[int] = None,
    dead_mask: Optional[np.ndarray] = None,
    loss: Optional["LossProcess"] = None,
) -> BroadcastTrace:
    """Run a reactive relay wave and return its trace.

    Parameters
    ----------
    topology:
        The network.
    source:
        0-based index of the originating node (always transmits, whether or
        not flagged in *relay_mask*).
    relay_mask:
        Boolean array; True for nodes that relay the message (transmit once,
        one slot after their first successful reception).
    extra_delay:
        Optional int array of additional slots each relay waits beyond the
        default ``first_rx + 1`` (paper: z-relays in the source plane wait
        one extra slot; border relays in Fig. 9 wait two).
    repeat_offsets:
        ``node -> (off1, off2, ...)``: after the node's first transmission
        at slot ``s`` it transmits again at ``s + off`` for each offset
        (the paper's designated retransmitters use ``(1,)``).
    forced_tx:
        ``slot -> nodes`` absolute extra transmissions (compiler repairs).
        A forced transmission is dropped (and recorded in
        ``trace.dropped_forced``) if the node is not informed before that
        slot — a compiled schedule must never trigger this.
    max_slots:
        Safety bound; defaults to ``4 * num_nodes + 16``.
    dead_mask:
        Optional boolean array of failed nodes: they never transmit and
        never receive (fault-injection extension).
    loss:
        Optional :class:`~repro.radio.impairments.LossProcess` erasing
        successful decodes after collision resolution.
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if dead_mask is not None:
        dead_mask = np.asarray(dead_mask, dtype=bool)
        if dead_mask.shape != (n,):
            raise ValueError(f"dead_mask must have shape ({n},)")
        if dead_mask[source]:
            raise ValueError("the source node cannot be dead")
    relay_mask = np.asarray(relay_mask, dtype=bool)
    if relay_mask.shape != (n,):
        raise ValueError(f"relay_mask must have shape ({n},)")
    if extra_delay is None:
        extra_delay = np.zeros(n, dtype=np.int64)
    else:
        extra_delay = np.asarray(extra_delay, dtype=np.int64)
        if extra_delay.shape != (n,):
            raise ValueError(f"extra_delay must have shape ({n},)")
        if (extra_delay < 0).any():
            raise ValueError("extra_delay must be non-negative")
    repeats = dict(repeat_offsets or {})
    forced = _normalize_forced(forced_tx)
    if max_slots is None:
        # cover the natural wave plus any far-future forced transmissions
        max_slots = max(4 * n + 16, max(forced, default=0) + 2)

    adjacency = topology.adjacency
    first_rx = np.full(n, -1, dtype=np.int64)
    first_rx[source] = 0
    trace = BroadcastTrace(num_nodes=n, source=source, first_rx=first_rx)

    pending: Dict[int, Set[int]] = {}

    def schedule_node(v: int, base_slot: int) -> None:
        """Schedule v's transmission(s) starting at *base_slot*."""
        pending.setdefault(base_slot, set()).add(v)
        for off in repeats.get(v, ()):
            if off < 1:
                raise ValueError(f"repeat offsets must be >= 1, got {off}")
            pending.setdefault(base_slot + off, set()).add(v)

    schedule_node(source, 1 + int(extra_delay[source]))

    t = 0
    while t < max_slots:
        future = [s for s in pending if s > t] + [s for s in forced if s > t]
        if not future:
            break
        t += 1
        tx_set = pending.pop(t, set())
        for v in forced.pop(t, set()):
            if 0 <= first_rx[v] < t:
                tx_set.add(v)
            else:
                trace.dropped_forced.append((t, int(v)))
        if dead_mask is not None:
            tx_set = {v for v in tx_set if not dead_mask[v]}
        if not tx_set:
            continue
        _execute_slot(adjacency, t, tx_set, trace, relay_mask, extra_delay,
                      schedule_node, dead_mask=dead_mask, loss=loss)
    return trace


def replay(topology: Topology, schedule: BroadcastSchedule,
           source: int,
           dead_mask: Optional[np.ndarray] = None,
           loss: Optional["LossProcess"] = None) -> BroadcastTrace:
    """Execute a fixed schedule verbatim and return the trace.

    *dead_mask* / *loss* inject faults into the replay: failed nodes
    neither transmit nor receive, and the loss process erases decodes.
    A fault-injected replay also drops the transmissions of nodes that
    (because of the faults) never obtained the message — a real node
    cannot forward a packet it does not hold.
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if dead_mask is not None:
        dead_mask = np.asarray(dead_mask, dtype=bool)
        if dead_mask.shape != (n,):
            raise ValueError(f"dead_mask must have shape ({n},)")
    adjacency = topology.adjacency
    first_rx = np.full(n, -1, dtype=np.int64)
    first_rx[source] = 0
    trace = BroadcastTrace(num_nodes=n, source=source, first_rx=first_rx)
    faulty = dead_mask is not None or loss is not None
    for t in schedule.active_slots():
        tx_set = schedule.transmitters(t)
        if dead_mask is not None:
            tx_set = {v for v in tx_set if not dead_mask[v]}
        if faulty:
            # a node that never received cannot forward
            tx_set = {v for v in tx_set
                      if v == source or 0 <= first_rx[v] < t}
        if not tx_set:
            continue
        _execute_slot(adjacency, t, tx_set, trace,
                      relay_mask=None, extra_delay=None, schedule_node=None,
                      dead_mask=dead_mask, loss=loss)
    return trace


def _execute_slot(adjacency, t: int, tx_set: Set[int],
                  trace: BroadcastTrace,
                  relay_mask: Optional[np.ndarray],
                  extra_delay: Optional[np.ndarray],
                  schedule_node,
                  dead_mask: Optional[np.ndarray] = None,
                  loss: Optional["LossProcess"] = None) -> None:
    """Resolve one slot, update the trace, and (reactive mode) schedule the
    transmissions of newly informed relays."""
    n = trace.num_nodes
    mask = np.zeros(n, dtype=bool)
    mask[list(tx_set)] = True
    outcome = resolve_slot(adjacency, mask)
    received = outcome.received
    if dead_mask is not None:
        received = received & ~dead_mask
    if loss is not None:
        received = loss.apply(t, received)

    for v in sorted(tx_set):
        trace.tx_events.append((t, int(v)))
    for v in np.nonzero(outcome.collided)[0]:
        if dead_mask is None or not dead_mask[v]:
            trace.collision_events.append((t, int(v)))

    received_nodes = np.nonzero(received)[0]
    for v in received_nodes:
        sender = unique_transmitter(adjacency, mask, int(v))
        trace.rx_events.append((t, int(v), sender))
        if trace.first_rx[v] < 0:
            trace.first_rx[v] = t
            if relay_mask is not None and relay_mask[v]:
                schedule_node(int(v), t + 1 + int(extra_delay[v]))
