"""Slot-synchronous broadcast simulation engine.

Two execution modes:

* :func:`run_reactive` — drives the *wave* semantics of the paper's
  protocols: a designated relay transmits one slot after it first
  successfully receives the message (plus an optional per-node extra delay,
  e.g. the 3D-6 z-relay staggering), optionally repeating its transmission
  a fixed number of slots later (the paper's designated retransmitters),
  and optional *forced* transmissions at absolute slots (repair
  retransmissions added by the schedule compiler).

* :func:`replay` — executes a fixed :class:`BroadcastSchedule` verbatim.
  Used to audit compiled schedules: the replayed trace must achieve 100 %
  reachability and respect causality (see :mod:`repro.core.validate`).

Both produce a full :class:`~repro.sim.trace.BroadcastTrace` under the
collision model of :mod:`repro.radio.channel`.

This is the *vectorised* production path: every slot is resolved by the
batched :class:`~repro.radio.channel.SlotKernel` (one CSR gather + two
bincounts, with sender attribution computed for all receivers in the same
pass), events accumulate into preallocated, geometrically grown numpy
buffers rather than per-event list appends, and the reactive scheduler
tracks the maximum scheduled slot instead of rescanning the pending map
every slot.  The unoptimised oracle lives in :mod:`repro.sim.reference`;
the differential test-suite proves the two produce identical traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..radio.impairments import LossProcess
from ..topology.base import Topology
from .schedule import BroadcastSchedule
from .trace import BroadcastTrace


def _normalize_forced(forced_tx: Optional[Mapping[int, Iterable[int]]]
                      ) -> Dict[int, Set[int]]:
    out: Dict[int, Set[int]] = {}
    if forced_tx:
        for slot, nodes in forced_tx.items():
            if slot < 1:
                raise ValueError(f"forced slots are 1-based, got {slot}")
            out[int(slot)] = {int(v) for v in nodes}
    return out


class _EventLog:
    """Preallocated, geometrically grown (slot, ...) event buffer.

    Events land in int64 numpy rows during the simulation; the python
    tuple lists of :class:`BroadcastTrace` are materialised once at the
    end (``tolist`` converts at C speed), so the hot loop never performs
    per-event list appends.
    """

    __slots__ = ("_buf", "_len")

    def __init__(self, columns: int, capacity: int = 128) -> None:
        self._buf = np.empty((capacity, columns), dtype=np.int64)
        self._len = 0

    def extend(self, slot: int, *columns: np.ndarray) -> None:
        k = len(columns[0])
        if k == 0:
            return
        need = self._len + k
        if need > self._buf.shape[0]:
            grown = np.empty((max(2 * self._buf.shape[0], need),
                              self._buf.shape[1]), dtype=np.int64)
            grown[:self._len] = self._buf[:self._len]
            self._buf = grown
        rows = self._buf[self._len:need]
        rows[:, 0] = slot
        for j, col in enumerate(columns, start=1):
            rows[:, j] = col
        self._len = need

    def tuples(self) -> List[tuple]:
        return list(map(tuple, self._buf[:self._len].tolist()))


def run_reactive(
    topology: Topology,
    source: int,
    relay_mask: np.ndarray,
    *,
    extra_delay: Optional[np.ndarray] = None,
    repeat_offsets: Optional[Mapping[int, Tuple[int, ...]]] = None,
    forced_tx: Optional[Mapping[int, Iterable[int]]] = None,
    max_slots: Optional[int] = None,
    dead_mask: Optional[np.ndarray] = None,
    loss: Optional["LossProcess"] = None,
) -> BroadcastTrace:
    """Run a reactive relay wave and return its trace.

    Parameters
    ----------
    topology:
        The network.
    source:
        0-based index of the originating node (always transmits, whether or
        not flagged in *relay_mask*).
    relay_mask:
        Boolean array; True for nodes that relay the message (transmit once,
        one slot after their first successful reception).
    extra_delay:
        Optional int array of additional slots each relay waits beyond the
        default ``first_rx + 1`` (paper: z-relays in the source plane wait
        one extra slot; border relays in Fig. 9 wait two).
    repeat_offsets:
        ``node -> (off1, off2, ...)``: after the node's first transmission
        at slot ``s`` it transmits again at ``s + off`` for each offset
        (the paper's designated retransmitters use ``(1,)``).
    forced_tx:
        ``slot -> nodes`` absolute extra transmissions (compiler repairs).
        A forced transmission is dropped (and recorded in
        ``trace.dropped_forced``) if the node is not informed before that
        slot — a compiled schedule must never trigger this.
    max_slots:
        Safety bound; defaults to ``4 * num_nodes + 16``.
    dead_mask:
        Optional boolean array of failed nodes: they never transmit and
        never receive (fault-injection extension).
    loss:
        Optional :class:`~repro.radio.impairments.LossProcess` erasing
        successful decodes after collision resolution.
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if dead_mask is not None:
        dead_mask = np.asarray(dead_mask, dtype=bool)
        if dead_mask.shape != (n,):
            raise ValueError(f"dead_mask must have shape ({n},)")
        if dead_mask[source]:
            raise ValueError("the source node cannot be dead")
    relay_mask = np.asarray(relay_mask, dtype=bool)
    if relay_mask.shape != (n,):
        raise ValueError(f"relay_mask must have shape ({n},)")
    if extra_delay is None:
        extra_delay = np.zeros(n, dtype=np.int64)
    else:
        extra_delay = np.asarray(extra_delay, dtype=np.int64)
        if extra_delay.shape != (n,):
            raise ValueError(f"extra_delay must have shape ({n},)")
        if (extra_delay < 0).any():
            raise ValueError("extra_delay must be non-negative")
    repeats = dict(repeat_offsets or {})
    for offs in repeats.values():
        for off in offs:
            if off < 1:
                raise ValueError(f"repeat offsets must be >= 1, got {off}")
    forced = _normalize_forced(forced_tx)
    if max_slots is None:
        # cover the natural wave plus any far-future forced transmissions
        max_slots = max(4 * n + 16, max(forced, default=0) + 2)

    kernel = topology.slot_kernel
    first_rx = np.full(n, -1, dtype=np.int64)
    first_rx[source] = 0
    tx_log = _EventLog(2)
    rx_log = _EventLog(3)
    coll_log = _EventLog(2)
    dropped_forced: List[Tuple[int, int]] = []

    alive_mask = None if dead_mask is None else ~dead_mask
    pending: Dict[int, Set[int]] = {}
    # Every scheduled slot is strictly in the future of the slot that
    # created it, so tracking the maximum scheduled slot replaces the
    # O(slots) "any future work?" rescan of the pending/forced maps.
    horizon = max(forced, default=0)

    repeats_get = repeats.get
    pending_setdefault = pending.setdefault

    def schedule_node(v: int, base_slot: int) -> None:
        """Schedule v's transmission(s) starting at *base_slot*."""
        nonlocal horizon
        pending_setdefault(base_slot, set()).add(v)
        last = base_slot
        for off in repeats_get(v, ()):
            s = base_slot + off
            pending_setdefault(s, set()).add(v)
            if s > last:
                last = s
        if last > horizon:
            horizon = last

    schedule_node(source, 1 + int(extra_delay[source]))

    t = 0
    while t < max_slots and t < horizon:
        t += 1
        tx_set = pending.pop(t, set())
        for v in sorted(forced.pop(t, ())):
            if 0 <= first_rx[v] < t:
                tx_set.add(v)
            else:
                dropped_forced.append((t, int(v)))
        if dead_mask is not None:
            tx_set = {v for v in tx_set if not dead_mask[v]}
        if not tx_set:
            continue
        _execute_slot(kernel, t, tx_set, first_rx,
                      tx_log, rx_log, coll_log,
                      relay_mask, extra_delay, schedule_node,
                      alive_mask=alive_mask, loss=loss)
    return BroadcastTrace(
        num_nodes=n, source=source, first_rx=first_rx,
        tx_events=tx_log.tuples(), rx_events=rx_log.tuples(),
        collision_events=coll_log.tuples(), dropped_forced=dropped_forced)


def replay(topology: Topology, schedule: BroadcastSchedule,
           source: int,
           dead_mask: Optional[np.ndarray] = None,
           loss: Optional["LossProcess"] = None) -> BroadcastTrace:
    """Execute a fixed schedule verbatim and return the trace.

    *dead_mask* / *loss* inject faults into the replay: failed nodes
    neither transmit nor receive, and the loss process erases decodes.
    A fault-injected replay also drops the transmissions of nodes that
    (because of the faults) never obtained the message — a real node
    cannot forward a packet it does not hold.
    """
    n = topology.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source index {source} out of range")
    if dead_mask is not None:
        dead_mask = np.asarray(dead_mask, dtype=bool)
        if dead_mask.shape != (n,):
            raise ValueError(f"dead_mask must have shape ({n},)")
    kernel = topology.slot_kernel
    first_rx = np.full(n, -1, dtype=np.int64)
    first_rx[source] = 0
    tx_log = _EventLog(2)
    rx_log = _EventLog(3)
    coll_log = _EventLog(2)
    alive_mask = None if dead_mask is None else ~dead_mask
    faulty = dead_mask is not None or loss is not None
    for t in schedule.active_slots():
        tx_set = schedule.transmitters(t)
        if dead_mask is not None:
            tx_set = {v for v in tx_set if not dead_mask[v]}
        if faulty:
            # a node that never received cannot forward
            tx_set = {v for v in tx_set
                      if v == source or 0 <= first_rx[v] < t}
        if not tx_set:
            continue
        _execute_slot(kernel, t, tx_set, first_rx,
                      tx_log, rx_log, coll_log,
                      relay_mask=None, extra_delay=None, schedule_node=None,
                      alive_mask=alive_mask, loss=loss)
    return BroadcastTrace(
        num_nodes=n, source=source, first_rx=first_rx,
        tx_events=tx_log.tuples(), rx_events=rx_log.tuples(),
        collision_events=coll_log.tuples())


def _execute_slot(kernel, t: int, tx_set: Set[int],
                  first_rx: np.ndarray,
                  tx_log: _EventLog, rx_log: _EventLog, coll_log: _EventLog,
                  relay_mask: Optional[np.ndarray],
                  extra_delay: Optional[np.ndarray],
                  schedule_node,
                  alive_mask: Optional[np.ndarray] = None,
                  loss: Optional["LossProcess"] = None) -> None:
    """Resolve one slot, log its events, and (reactive mode) schedule the
    transmissions of newly informed relays."""
    tx_nodes = np.fromiter(tx_set, count=len(tx_set), dtype=np.int64)
    tx_nodes.sort()
    _, received, collided, senders = kernel.resolve(tx_nodes)
    if alive_mask is not None:
        received &= alive_mask
        collided &= alive_mask
    if loss is not None:
        received = loss.apply(t, received)

    tx_log.extend(t, tx_nodes)
    coll_log.extend(t, collided.nonzero()[0])

    rx_nodes = received.nonzero()[0]
    rx_log.extend(t, rx_nodes, senders[rx_nodes])
    new_nodes = rx_nodes[first_rx[rx_nodes] < 0]
    if len(new_nodes):
        first_rx[new_nodes] = t
        if relay_mask is not None:
            for v in new_nodes[relay_mask[new_nodes]]:
                schedule_node(int(v), t + 1 + int(extra_delay[v]))
