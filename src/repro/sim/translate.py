"""Exact translation of compiled broadcasts across the lattice.

A compiled broadcast is a deterministic slot-by-slot process; on an
*infinite* lattice, shifting the source by ``delta`` shifts every event by
``delta``.  On the finite grids the paper uses, that equivariance only
survives when nothing about the process "feels" a border, which this
module checks before remapping anything:

* **footprint containment** — every node that appears in any event
  (transmitters, receivers, collision sites, dropped-forced nodes, the
  source) must stay inside the grid after the shift;
* **interior transmitters** — every transmitter must have the *same
  neighbour-offset stencil* at its original and shifted position.  If a
  transmitter keeps its full stencil in both placements, its receptions
  translate exactly; receivers may sit on a border, because the extra
  neighbours their shifted image gains are images of off-grid positions
  and therefore provably non-transmitters.

When both conditions hold, the translated trace/schedule is exactly what
re-simulating the translated plan from the translated source produces
(the differential tests in ``tests/test_symmetry_reduction.py`` pin this
down).  When either fails — which is *always* the case for a broadcast
that covers the whole grid, since full coverage touches every border —
:class:`TranslationError` is raised.  This is why the symmetry-reduced
sweep (:mod:`repro.core.symmetry`) derives full-grid class members by
batched re-simulation instead of naive event translation: the paper's
border rules (2D-4 column completion, 2D-8 border continuation, clipped
B1/B2 arms, clipped Lee columns) make spanning broadcasts of same-residue
sources *not* translates of each other, and the class key's clamped
border distances only bound where that breakage can occur.  Translation
stays available — and exact — for sub-spanning broadcasts (partial
rule-phase compilations, regional repairs).

All node remapping runs through one vectorized
:meth:`~repro.topology.base.Topology.shift_index_map` pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

from .schedule import BroadcastSchedule
from .trace import BroadcastTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.base import CompiledBroadcast, RelayPlan
    from ..topology.base import Topology


class TranslationError(ValueError):
    """The requested shift is not an exact symmetry of the broadcast."""


def _mapped_nodes(mapped: np.ndarray, valid: np.ndarray,
                  nodes: Sequence[int], what: str) -> List[int]:
    """Remap *nodes* through the shift map, or raise."""
    out = []
    for v in nodes:
        if not valid[v]:
            raise TranslationError(
                f"{what} node {v} leaves the grid under the shift")
        out.append(int(mapped[v]))
    return out


def _check_transmitter_stencils(topology: "Topology", mapped: np.ndarray,
                                transmitters: Sequence[int],
                                delta: Sequence[int]) -> None:
    """Every transmitter must keep its full neighbour-offset stencil."""
    for v in transmitters:
        cv = topology.coord(v)
        cw = topology.coord(int(mapped[v]))
        offsets_here = {topology.coord_delta(cv, u)
                        for u in topology.neighbors(cv)}
        offsets_there = {topology.coord_delta(cw, u)
                         for u in topology.neighbors(cw)}
        if offsets_here != offsets_there:
            raise TranslationError(
                f"transmitter {cv} -> {cw} changes its neighbour stencil "
                f"under shift {tuple(delta)}; receptions would differ")


def translate_trace(topology: "Topology", trace: BroadcastTrace,
                    delta: Sequence[int]) -> BroadcastTrace:
    """Translate *trace* by *delta*; exact or :class:`TranslationError`."""
    mapped, valid = topology.shift_index_map(delta)

    informed = trace.first_rx >= 0
    if (informed & ~valid).any():
        bad = int(np.nonzero(informed & ~valid)[0][0])
        raise TranslationError(
            f"informed node {topology.coord(bad)} leaves the grid under "
            f"the shift {tuple(delta)}")
    transmitters = sorted({v for _, v in trace.tx_events} | {trace.source})
    _check_transmitter_stencils(topology, mapped, transmitters, delta)

    first_rx = np.full(topology.num_nodes, -1, dtype=np.int64)
    idx = np.nonzero(informed)[0]
    first_rx[mapped[idx]] = trace.first_rx[idx]

    tx = [(s, int(mapped[v])) for s, v in trace.tx_events]
    rx = [(s, *_mapped_nodes(mapped, valid, (r, snd), "rx"))
          for s, r, snd in trace.rx_events]
    coll_nodes = _mapped_nodes(mapped, valid,
                               [v for _, v in trace.collision_events],
                               "collision")
    coll = [(s, w) for (s, _), w in zip(trace.collision_events, coll_nodes)]
    dropped = [(s, w) for (s, _), w in zip(
        trace.dropped_forced,
        _mapped_nodes(mapped, valid,
                      [v for _, v in trace.dropped_forced],
                      "dropped-forced"))]
    return BroadcastTrace(
        num_nodes=topology.num_nodes, source=int(mapped[trace.source]),
        first_rx=first_rx, tx_events=tx, rx_events=rx,
        collision_events=coll, dropped_forced=dropped)


def translate_schedule(topology: "Topology", schedule: BroadcastSchedule,
                       delta: Sequence[int]) -> BroadcastSchedule:
    """Translate a static schedule by *delta* (footprint check only)."""
    mapped, valid = topology.shift_index_map(delta)
    out = BroadcastSchedule()
    for slot in schedule.active_slots():
        for w in _mapped_nodes(mapped, valid,
                               sorted(schedule.transmitters(slot)),
                               "scheduled"):
            out.add(slot, w)
    return out


def translate_plan(topology: "Topology", plan: "RelayPlan",
                   delta: Sequence[int]) -> "RelayPlan":
    """Translate a relay plan by *delta*.

    Relay/retransmitter designations whose shifted position leaves the
    grid are dropped (they are annotated in ``notes``); the caller —
    :func:`translate_compiled` — separately guarantees that no *executed*
    transmission is among them, so the dropped designations are exactly
    the ones that never fire.
    """
    from ..core.base import RelayPlan
    mapped, valid = topology.shift_index_map(delta)
    n = topology.num_nodes
    relay_mask = np.zeros(n, dtype=bool)
    extra_delay = np.zeros(n, dtype=np.int64)
    keep = plan.relay_mask & valid
    relay_mask[mapped[keep]] = True
    extra_delay[mapped[valid]] = plan.extra_delay[valid]
    repeats = {int(mapped[v]): offs
               for v, offs in plan.repeat_offsets.items() if valid[v]}
    dropped_relays = int((plan.relay_mask & ~valid).sum())
    dropped_repeats = sum(1 for v in plan.repeat_offsets if not valid[v])
    notes = dict(plan.notes)
    notes["translation"] = {
        "delta": tuple(int(d) for d in delta),
        "dropped_relays": dropped_relays,
        "dropped_retransmitters": dropped_repeats,
    }
    return RelayPlan(relay_mask=relay_mask, extra_delay=extra_delay,
                     repeat_offsets=repeats, notes=notes)


def translate_compiled(topology: "Topology", compiled: "CompiledBroadcast",
                       delta: Sequence[int]) -> "CompiledBroadcast":
    """Translate a :class:`~repro.core.base.CompiledBroadcast` by *delta*.

    Exact by construction when it returns: the translated schedule, trace
    (``first_rx`` and every tx/rx/collision event), plan masks/notes and
    completion/repair fix lists are the originals remapped through one
    vectorized index-translation pass, and the guard conditions (module
    docstring) guarantee that re-simulating the translated plan from the
    translated source reproduces the translated trace event for event.
    Raises :class:`TranslationError` otherwise — in particular for every
    full-coverage broadcast with ``delta != 0``.
    """
    from ..core.base import CompiledBroadcast
    mapped, valid = topology.shift_index_map(delta)
    trace = translate_trace(topology, compiled.trace, delta)
    schedule = translate_schedule(topology, compiled.schedule, delta)
    plan = translate_plan(topology, compiled.plan, delta)
    fixes = {}
    for kind, entries in (("completions", compiled.completions),
                          ("repairs", compiled.repairs)):
        nodes = _mapped_nodes(mapped, valid, [v for v, _ in entries], kind)
        fixes[kind] = [(w, s) for w, (_, s) in zip(nodes, entries)]
    return CompiledBroadcast(
        topology_name=compiled.topology_name,
        source=trace.source,
        schedule=schedule, trace=trace, plan=plan,
        completions=fixes["completions"], repairs=fixes["repairs"],
        rounds=compiled.rounds)
