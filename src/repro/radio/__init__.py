"""Radio substrate: energy model, packets, channel collision semantics."""

from .channel import SlotOutcome, resolve_slot, unique_transmitter
from .impairments import (BernoulliLoss, BurstLoss, LossProcess,
                          PerfectChannel, dead_mask_from_coords,
                          random_dead_mask)
from .energy import (E_AMP_J_PER_BIT_M2, E_ELEC_J_PER_BIT, PAPER_PACKET_BITS,
                     PAPER_RADIO_MODEL, PAPER_SPACING_M, FirstOrderRadioModel,
                     TwoRayRadioModel)
from .packet import Packet

__all__ = [
    "FirstOrderRadioModel",
    "TwoRayRadioModel",
    "PAPER_RADIO_MODEL",
    "Packet",
    "SlotOutcome",
    "resolve_slot",
    "unique_transmitter",
    "E_ELEC_J_PER_BIT",
    "LossProcess",
    "PerfectChannel",
    "BernoulliLoss",
    "BurstLoss",
    "dead_mask_from_coords",
    "random_dead_mask",
    "E_AMP_J_PER_BIT_M2",
    "PAPER_PACKET_BITS",
    "PAPER_SPACING_M",
]
