"""Radio substrate: energy model, packets, channel collision semantics."""

from .channel import SlotKernel, SlotOutcome, resolve_slot, unique_transmitter
from .impairments import (BatchLoss, BernoulliBatchLoss, BernoulliLoss,
                          BurstBatchLoss, BurstLoss, CounterBernoulliLoss,
                          CounterBurstLoss, LossProcess, PerTrialBatchLoss,
                          PerfectChannel, counter_uniforms,
                          dead_mask_from_coords, random_dead_mask,
                          trial_seeds)
from .energy import (E_AMP_J_PER_BIT_M2, E_ELEC_J_PER_BIT, PAPER_PACKET_BITS,
                     PAPER_RADIO_MODEL, PAPER_SPACING_M, FirstOrderRadioModel,
                     TwoRayRadioModel)
from .packet import Packet

__all__ = [
    "FirstOrderRadioModel",
    "TwoRayRadioModel",
    "PAPER_RADIO_MODEL",
    "Packet",
    "SlotOutcome",
    "resolve_slot",
    "unique_transmitter",
    "E_ELEC_J_PER_BIT",
    "LossProcess",
    "PerfectChannel",
    "BernoulliLoss",
    "BurstLoss",
    "CounterBernoulliLoss",
    "CounterBurstLoss",
    "BatchLoss",
    "BernoulliBatchLoss",
    "BurstBatchLoss",
    "PerTrialBatchLoss",
    "counter_uniforms",
    "trial_seeds",
    "SlotKernel",
    "dead_mask_from_coords",
    "random_dead_mask",
    "E_AMP_J_PER_BIT_M2",
    "PAPER_PACKET_BITS",
    "PAPER_SPACING_M",
]
