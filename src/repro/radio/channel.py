"""Slot-synchronous radio channel with collision semantics.

The paper assumes (Section 2) that all sensors are time-synchronised and
the channel is symmetric.  Its collision analysis (Section 3) implicitly
uses the classic packet-radio model, which we make explicit here:

* Time is divided into slots; a transmission occupies exactly one slot and
  is heard by every lattice neighbour of the transmitter.
* A node *decodes* the packet in a slot iff **exactly one** of its
  neighbours transmits in that slot (two or more -> collision, garbled) and
  the node itself is not transmitting (half-duplex).
* Transmitters hear nothing during their own slot.

:func:`resolve_slot` is the single vectorised kernel implementing this —
one sparse mat-vec per slot, as recommended by the HPC guides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from .. import profiling
from . import bitpack


@dataclass(frozen=True)
class SlotOutcome:
    """Per-node outcome of one slot.

    Attributes
    ----------
    heard:
        Number of in-range transmitters per node (0 = silence).
    received:
        Boolean; node decoded the packet this slot (exactly one transmitter
        among neighbours, node itself silent).
    collided:
        Boolean; node heard >= 2 simultaneous transmitters (and was not
        itself transmitting) — garbled air time.
    """

    heard: np.ndarray
    received: np.ndarray
    collided: np.ndarray


def resolve_slot(adjacency: sparse.csr_matrix,
                 transmitting: np.ndarray) -> SlotOutcome:
    """Resolve one slot of the collision model.

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency of the topology.
    transmitting:
        Boolean vector, True where the node transmits this slot.

    Returns
    -------
    SlotOutcome with per-node ``heard`` counts, ``received`` and
    ``collided`` flags.
    """
    n = adjacency.shape[0]
    if transmitting.shape != (n,):
        raise ValueError(
            f"transmitting mask has shape {transmitting.shape}, "
            f"expected ({n},)")
    heard = adjacency.dot(transmitting.astype(np.int8)).astype(np.int64)
    idle = ~transmitting
    received = (heard == 1) & idle
    collided = (heard >= 2) & idle
    return SlotOutcome(heard=heard, received=received, collided=collided)


class SlotKernel:
    """Batched collision kernel bound to one topology's adjacency.

    :func:`resolve_slot` pays the scipy sparse-dispatch overhead and a
    per-receiver :func:`unique_transmitter` scan on every slot.  This
    kernel keeps the CSR arrays as plain numpy and resolves a slot from
    the *transmitter list* instead of a dense mask: one vectorised CSR row
    gather over the transmitters, one ``bincount`` for the ``heard``
    counts, and one scatter that attributes every clean decode to its
    sender — replacing all ``unique_transmitter`` calls for the slot in a
    single pass.

    The outcome is bit-identical to ``resolve_slot`` +
    ``unique_transmitter`` (see the differential tests).
    """

    def __init__(self, adjacency: sparse.csr_matrix) -> None:
        adjacency = adjacency.tocsr()
        self.num_nodes = int(adjacency.shape[0])
        self._indptr = adjacency.indptr.astype(np.int64)
        self._indices = adjacency.indices.astype(np.int64)
        self.max_degree = (int(np.diff(self._indptr).max())
                           if self.num_nodes else 0)
        # Scratch buffers reused across resolve()/resolve_batch() calls.
        self._senders = np.empty(self.num_nodes, dtype=np.int64)
        self._batch_senders = None
        # Flat (trials * n) outcome buffers of resolve_batch, reset
        # sparsely via the previous call's touched-cell list.
        self._batch_heard = None
        self._batch_received = None
        self._batch_collided = None
        self._batch_touched = np.empty(0, dtype=np.int64)
        self._packed: Optional["bitpack.PackedSlotKernel"] = None

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of the bound adjacency (read-only use)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array of the bound adjacency (read-only use)."""
        return self._indices

    def resolve(self, tx_nodes: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Resolve one slot given the array of transmitting node indices.

        Returns ``(heard, received, collided, senders)``.  ``senders[v]``
        is the delivering neighbour wherever ``received[v]`` is True and
        garbage elsewhere; the senders array is a scratch buffer reused by
        the next ``resolve`` call, so consumers must copy out what they
        need before resolving another slot.
        """
        tx_nodes = np.asarray(tx_nodes, dtype=np.int64)
        n = self.num_nodes
        senders = self._senders
        if len(tx_nodes) == 1:
            # Dominant case in wave tails and repair rounds: one CSR row.
            v = int(tx_nodes[0])
            nbrs = self._indices[self._indptr[v]:self._indptr[v + 1]]
            heard = np.bincount(nbrs, minlength=n)
            senders[nbrs] = v
        else:
            starts = self._indptr[tx_nodes]
            counts = self._indptr[tx_nodes + 1] - starts
            total = int(counts.sum())
            if total:
                # Position k of the gather maps to offset (k - row start in
                # the output) within its CSR row: vectorised multi-slice
                # gather.
                out_starts = counts.cumsum() - counts
                pos = (np.arange(total, dtype=np.int64)
                       - out_starts.repeat(counts)
                       + starts.repeat(counts))
                nbrs = self._indices[pos]
                heard = np.bincount(nbrs, minlength=n)
                # Exactly one writer reaches any node with heard == 1, so
                # the scatter leaves the unique sender there; collided or
                # silent entries hold garbage and are never read.
                senders[nbrs] = tx_nodes.repeat(counts)
            else:
                heard = np.zeros(n, dtype=np.int64)
        received = heard == 1
        collided = heard >= 2
        # Half-duplex: transmitters hear nothing.
        received[tx_nodes] = False
        collided[tx_nodes] = False
        return heard, received, collided, senders

    def packed(self) -> "bitpack.PackedSlotKernel":
        """Lazily built bit-packed kernel sharing this CSR adjacency
        (see :mod:`repro.radio.bitpack`).  Raises on big-endian hosts;
        callers gate on :func:`repro.radio.bitpack.packing_supported`.
        """
        if self._packed is None:
            self._packed = bitpack.PackedSlotKernel(
                self._indptr, self._indices, self.num_nodes)
        return self._packed

    def _batch_buffers(self, trials: int
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
        """(Re)build the per-batch scratch, keyed on the full ``(trials,
        n)`` shape: two kernels of different ``n`` can interleave calls
        with the same trial count without corrupting each other."""
        n = self.num_nodes
        senders = self._batch_senders
        if senders is None or senders.shape != (trials, n):
            # Narrower-than-int64 heard accumulator where the degree
            # bound permits: counts are capped by max_degree, so uint8
            # is exact on every lattice the paper uses (degree <= 26).
            heard_dtype = np.uint8 if self.max_degree < 255 else np.int64
            self._batch_senders = np.empty((trials, n), dtype=np.int64)
            self._batch_heard = np.zeros(trials * n, dtype=heard_dtype)
            self._batch_received = np.zeros(trials * n, dtype=bool)
            self._batch_collided = np.zeros(trials * n, dtype=bool)
            self._batch_touched = np.empty(0, dtype=np.int64)
        return (self._batch_senders, self._batch_heard,
                self._batch_received, self._batch_collided)

    def resolve_batch(self, tx_nodes: np.ndarray, tx_trials: np.ndarray,
                      trials: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
        """Resolve one slot for *trials* independent trials at once.

        ``(tx_trials[i], tx_nodes[i])`` are the (trial, node) transmission
        pairs of the slot across the whole batch.  The physics is the same
        as :meth:`resolve` applied per trial, but all trials share a
        single CSR row gather; a neighbour hit of trial *b* lands in flat
        cell ``b * n + neighbour``, so every trial's airspace stays
        independent.  Counting is sparse — unique hit cells with
        multiplicities — and lands in a reused narrow accumulator that is
        reset cell-by-cell from the previous slot's touched list, so no
        dense ``(B, n)`` int64 array is zeroed, written, or compared per
        slot.  A single transmission pair (wave tails, repair rounds)
        skips counting entirely: every neighbour decodes.

        Returns ``(heard, received, collided, senders)``, each of shape
        ``(trials, num_nodes)``.  All four are scratch buffers reused by
        the next ``resolve_batch`` call (and keyed on the full
        ``(trials, num_nodes)`` shape), so consumers must finish with a
        slot before resolving the next; ``senders`` is only meaningful
        where ``received`` is True.
        """
        tx_nodes = np.asarray(tx_nodes, dtype=np.int64)
        tx_trials = np.asarray(tx_trials, dtype=np.int64)
        n = self.num_nodes
        senders, heard, received, collided = self._batch_buffers(trials)
        prev = self._batch_touched
        if len(prev):
            heard[prev] = 0
            received[prev] = False
            collided[prev] = False
        if len(tx_nodes) == 1:
            # Single-transmitter fast path: one CSR row, no counting —
            # every neighbour decodes and attributes the same sender.
            v = int(tx_nodes[0])
            nbrs = self._indices[self._indptr[v]:self._indptr[v + 1]]
            cells = int(tx_trials[0]) * n + nbrs
            heard[cells] = 1
            received[cells] = True
            senders[int(tx_trials[0]), nbrs] = v
            self._batch_touched = cells
        else:
            with profiling.phase("gather"):
                starts = self._indptr[tx_nodes]
                counts = self._indptr[tx_nodes + 1] - starts
                total = int(counts.sum())
                if total:
                    out_starts = counts.cumsum() - counts
                    pos = (np.arange(total, dtype=np.int64)
                           - out_starts.repeat(counts)
                           + starts.repeat(counts))
                    nbrs = self._indices[pos]
                    keys = tx_trials.repeat(counts) * n + nbrs
            if total:
                with profiling.phase("bincount"):
                    uniq, cnt = np.unique(keys, return_counts=True)
                    heard[uniq] = cnt
                    received[uniq[cnt == 1]] = True
                    collided[uniq[cnt >= 2]] = True
                # heard == 1 cells have exactly one writer: the sender.
                senders.reshape(-1)[keys] = tx_nodes.repeat(counts)
                # Half-duplex: transmitters hear nothing in their trial.
                tx_cells = tx_trials * n + tx_nodes
                received[tx_cells] = False
                collided[tx_cells] = False
                self._batch_touched = uniq
            else:
                self._batch_touched = np.empty(0, dtype=np.int64)
        return (heard.reshape(trials, n), received.reshape(trials, n),
                collided.reshape(trials, n), senders)


def unique_transmitter(adjacency: sparse.csr_matrix,
                       transmitting: np.ndarray,
                       receiver: int) -> int:
    """Index of the unique transmitting neighbour of *receiver*, or -1.

    Only meaningful when the receiver decoded the slot; used for trace
    attribution (who delivered the packet to whom).
    """
    start, end = adjacency.indptr[receiver], adjacency.indptr[receiver + 1]
    nbrs = adjacency.indices[start:end]
    txs = nbrs[transmitting[nbrs]]
    if len(txs) == 1:
        return int(txs[0])
    return -1
