"""Slot-synchronous radio channel with collision semantics.

The paper assumes (Section 2) that all sensors are time-synchronised and
the channel is symmetric.  Its collision analysis (Section 3) implicitly
uses the classic packet-radio model, which we make explicit here:

* Time is divided into slots; a transmission occupies exactly one slot and
  is heard by every lattice neighbour of the transmitter.
* A node *decodes* the packet in a slot iff **exactly one** of its
  neighbours transmits in that slot (two or more -> collision, garbled) and
  the node itself is not transmitting (half-duplex).
* Transmitters hear nothing during their own slot.

:func:`resolve_slot` is the single vectorised kernel implementing this —
one sparse mat-vec per slot, as recommended by the HPC guides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class SlotOutcome:
    """Per-node outcome of one slot.

    Attributes
    ----------
    heard:
        Number of in-range transmitters per node (0 = silence).
    received:
        Boolean; node decoded the packet this slot (exactly one transmitter
        among neighbours, node itself silent).
    collided:
        Boolean; node heard >= 2 simultaneous transmitters (and was not
        itself transmitting) — garbled air time.
    """

    heard: np.ndarray
    received: np.ndarray
    collided: np.ndarray


def resolve_slot(adjacency: sparse.csr_matrix,
                 transmitting: np.ndarray) -> SlotOutcome:
    """Resolve one slot of the collision model.

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency of the topology.
    transmitting:
        Boolean vector, True where the node transmits this slot.

    Returns
    -------
    SlotOutcome with per-node ``heard`` counts, ``received`` and
    ``collided`` flags.
    """
    n = adjacency.shape[0]
    if transmitting.shape != (n,):
        raise ValueError(
            f"transmitting mask has shape {transmitting.shape}, "
            f"expected ({n},)")
    heard = adjacency.dot(transmitting.astype(np.int8)).astype(np.int64)
    idle = ~transmitting
    received = (heard == 1) & idle
    collided = (heard >= 2) & idle
    return SlotOutcome(heard=heard, received=received, collided=collided)


class SlotKernel:
    """Batched collision kernel bound to one topology's adjacency.

    :func:`resolve_slot` pays the scipy sparse-dispatch overhead and a
    per-receiver :func:`unique_transmitter` scan on every slot.  This
    kernel keeps the CSR arrays as plain numpy and resolves a slot from
    the *transmitter list* instead of a dense mask: one vectorised CSR row
    gather over the transmitters, one ``bincount`` for the ``heard``
    counts, and one scatter that attributes every clean decode to its
    sender — replacing all ``unique_transmitter`` calls for the slot in a
    single pass.

    The outcome is bit-identical to ``resolve_slot`` +
    ``unique_transmitter`` (see the differential tests).
    """

    def __init__(self, adjacency: sparse.csr_matrix) -> None:
        adjacency = adjacency.tocsr()
        self.num_nodes = int(adjacency.shape[0])
        self._indptr = adjacency.indptr.astype(np.int64)
        self._indices = adjacency.indices.astype(np.int64)
        # Scratch buffers reused across resolve()/resolve_batch() calls.
        self._senders = np.empty(self.num_nodes, dtype=np.int64)
        self._batch_senders = None

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of the bound adjacency (read-only use)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array of the bound adjacency (read-only use)."""
        return self._indices

    def resolve(self, tx_nodes: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Resolve one slot given the array of transmitting node indices.

        Returns ``(heard, received, collided, senders)``.  ``senders[v]``
        is the delivering neighbour wherever ``received[v]`` is True and
        garbage elsewhere; the senders array is a scratch buffer reused by
        the next ``resolve`` call, so consumers must copy out what they
        need before resolving another slot.
        """
        tx_nodes = np.asarray(tx_nodes, dtype=np.int64)
        n = self.num_nodes
        senders = self._senders
        if len(tx_nodes) == 1:
            # Dominant case in wave tails and repair rounds: one CSR row.
            v = int(tx_nodes[0])
            nbrs = self._indices[self._indptr[v]:self._indptr[v + 1]]
            heard = np.bincount(nbrs, minlength=n)
            senders[nbrs] = v
        else:
            starts = self._indptr[tx_nodes]
            counts = self._indptr[tx_nodes + 1] - starts
            total = int(counts.sum())
            if total:
                # Position k of the gather maps to offset (k - row start in
                # the output) within its CSR row: vectorised multi-slice
                # gather.
                out_starts = counts.cumsum() - counts
                pos = (np.arange(total, dtype=np.int64)
                       - out_starts.repeat(counts)
                       + starts.repeat(counts))
                nbrs = self._indices[pos]
                heard = np.bincount(nbrs, minlength=n)
                # Exactly one writer reaches any node with heard == 1, so
                # the scatter leaves the unique sender there; collided or
                # silent entries hold garbage and are never read.
                senders[nbrs] = tx_nodes.repeat(counts)
            else:
                heard = np.zeros(n, dtype=np.int64)
        received = heard == 1
        collided = heard >= 2
        # Half-duplex: transmitters hear nothing.
        received[tx_nodes] = False
        collided[tx_nodes] = False
        return heard, received, collided, senders

    def resolve_batch(self, tx_nodes: np.ndarray, tx_trials: np.ndarray,
                      trials: int
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
        """Resolve one slot for *trials* independent trials at once.

        ``(tx_trials[i], tx_nodes[i])`` are the (trial, node) transmission
        pairs of the slot across the whole batch.  The physics is the same
        as :meth:`resolve` applied per trial, but all trials share a
        single CSR row gather and a single flattened 2-D ``bincount``: a
        neighbour hit of trial *b* lands in bin ``b * n + neighbour``, so
        the reshaped ``(B, n)`` counts keep every trial's airspace
        independent.

        Returns ``(heard, received, collided, senders)``, each of shape
        ``(trials, num_nodes)``.  As with :meth:`resolve`, ``senders`` is
        only meaningful where ``received`` is True and is a scratch buffer
        reused by the next ``resolve_batch`` call of the same batch size.
        """
        tx_nodes = np.asarray(tx_nodes, dtype=np.int64)
        tx_trials = np.asarray(tx_trials, dtype=np.int64)
        n = self.num_nodes
        senders = self._batch_senders
        if senders is None or senders.shape[0] != trials:
            senders = np.empty((trials, n), dtype=np.int64)
            self._batch_senders = senders
        starts = self._indptr[tx_nodes]
        counts = self._indptr[tx_nodes + 1] - starts
        total = int(counts.sum())
        if total:
            out_starts = counts.cumsum() - counts
            pos = (np.arange(total, dtype=np.int64)
                   - out_starts.repeat(counts)
                   + starts.repeat(counts))
            nbrs = self._indices[pos]
            rows = tx_trials.repeat(counts)
            heard = np.bincount(rows * n + nbrs,
                                minlength=trials * n).reshape(trials, n)
            # heard == 1 cells have exactly one writer: the unique sender.
            senders[rows, nbrs] = tx_nodes.repeat(counts)
        else:
            heard = np.zeros((trials, n), dtype=np.int64)
        received = heard == 1
        collided = heard >= 2
        # Half-duplex: transmitters hear nothing in their own trial.
        received[tx_trials, tx_nodes] = False
        collided[tx_trials, tx_nodes] = False
        return heard, received, collided, senders


def unique_transmitter(adjacency: sparse.csr_matrix,
                       transmitting: np.ndarray,
                       receiver: int) -> int:
    """Index of the unique transmitting neighbour of *receiver*, or -1.

    Only meaningful when the receiver decoded the slot; used for trace
    attribution (who delivered the packet to whom).
    """
    start, end = adjacency.indptr[receiver], adjacency.indptr[receiver + 1]
    nbrs = adjacency.indices[start:end]
    txs = nbrs[transmitting[nbrs]]
    if len(txs) == 1:
        return int(txs[0])
    return -1
