"""Slot-synchronous radio channel with collision semantics.

The paper assumes (Section 2) that all sensors are time-synchronised and
the channel is symmetric.  Its collision analysis (Section 3) implicitly
uses the classic packet-radio model, which we make explicit here:

* Time is divided into slots; a transmission occupies exactly one slot and
  is heard by every lattice neighbour of the transmitter.
* A node *decodes* the packet in a slot iff **exactly one** of its
  neighbours transmits in that slot (two or more -> collision, garbled) and
  the node itself is not transmitting (half-duplex).
* Transmitters hear nothing during their own slot.

:func:`resolve_slot` is the single vectorised kernel implementing this —
one sparse mat-vec per slot, as recommended by the HPC guides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class SlotOutcome:
    """Per-node outcome of one slot.

    Attributes
    ----------
    heard:
        Number of in-range transmitters per node (0 = silence).
    received:
        Boolean; node decoded the packet this slot (exactly one transmitter
        among neighbours, node itself silent).
    collided:
        Boolean; node heard >= 2 simultaneous transmitters (and was not
        itself transmitting) — garbled air time.
    """

    heard: np.ndarray
    received: np.ndarray
    collided: np.ndarray


def resolve_slot(adjacency: sparse.csr_matrix,
                 transmitting: np.ndarray) -> SlotOutcome:
    """Resolve one slot of the collision model.

    Parameters
    ----------
    adjacency:
        Symmetric CSR adjacency of the topology.
    transmitting:
        Boolean vector, True where the node transmits this slot.

    Returns
    -------
    SlotOutcome with per-node ``heard`` counts, ``received`` and
    ``collided`` flags.
    """
    n = adjacency.shape[0]
    if transmitting.shape != (n,):
        raise ValueError(
            f"transmitting mask has shape {transmitting.shape}, "
            f"expected ({n},)")
    heard = adjacency.dot(transmitting.astype(np.int8)).astype(np.int64)
    idle = ~transmitting
    received = (heard == 1) & idle
    collided = (heard >= 2) & idle
    return SlotOutcome(heard=heard, received=received, collided=collided)


def unique_transmitter(adjacency: sparse.csr_matrix,
                       transmitting: np.ndarray,
                       receiver: int) -> int:
    """Index of the unique transmitting neighbour of *receiver*, or -1.

    Only meaningful when the receiver decoded the slot; used for trace
    attribution (who delivered the packet to whom).
    """
    start, end = adjacency.indptr[receiver], adjacency.indptr[receiver + 1]
    nbrs = adjacency.indices[start:end]
    txs = nbrs[transmitting[nbrs]]
    if len(txs) == 1:
        return int(txs[0])
    return -1
