"""Channel impairments: packet loss and node failures.

The paper assumes an ideal (loss-free) channel — its only impairment is
the collision model.  Real sensor radios also suffer fading and
interference, and sensor nodes die.  These models let the benchmarks
measure how gracefully the compiled schedules degrade (and what hardening
them costs); they are *extensions*, clearly separated from the paper's
own experiments.

Loss processes are deterministic given their seed **per slot**, not per
call: the same slot always draws the same erasures, so a reactive run and
a replay of its schedule see identical channels.

Two RNG families coexist:

* the original :class:`BernoulliLoss` / :class:`BurstLoss` draw from a
  fresh PCG64 generator seeded by ``(seed, slot)`` — one generator
  construction per slot, inherently serial per trial;
* the *counter-based* :class:`CounterBernoulliLoss` /
  :class:`CounterBurstLoss` hash ``(seed, slot, node)`` triples straight
  to uniforms (splitmix64 finalizer), so the draws of **B independent
  trials** are one broadcasted ``(B, n)`` array operation.  The batched
  Monte-Carlo engine (:func:`repro.sim.engine.run_reactive_batch`) uses
  the matching :class:`BernoulliBatchLoss` whose row *b* is bit-identical
  to ``CounterBernoulliLoss(p, seeds[b])`` — the serial-equivalence
  guarantee the differential tests pin down.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence

import numpy as np


class LossProcess(abc.ABC):
    """Per-slot packet-erasure process applied after collision resolution."""

    @abc.abstractmethod
    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        """Return the subset of *received* that survives slot *slot*."""


class PerfectChannel(LossProcess):
    """No losses (the paper's channel)."""

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        return received


class BernoulliLoss(LossProcess):
    """Each successful decode is independently erased with probability p.

    Models fast fading / ambient interference.  Erasures are drawn from a
    per-slot RNG seeded by ``(seed, slot)`` so outcomes do not depend on
    the order in which slots are simulated.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        rng = np.random.default_rng((self.seed, slot))
        survive = rng.random(received.shape[0]) >= self.p
        return received & survive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BernoulliLoss p={self.p} seed={self.seed}>"


class BurstLoss(LossProcess):
    """Whole-slot blackouts: with probability p a slot erases everything.

    Models wide-band interference bursts (e.g. a colocated radar sweep) —
    the hardest case for slot-synchronous schedules because an entire
    wavefront is lost at once.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"burst probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        rng = np.random.default_rng((self.seed, slot))
        if rng.random() < self.p:
            return np.zeros_like(received)
        return received

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BurstLoss p={self.p} seed={self.seed}>"


# ---------------------------------------------------------------------------
# Counter-based RNG: hash (seed, slot, counter) -> uniform, fully vectorised
# ---------------------------------------------------------------------------

_U64 = np.uint64
_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)
_INV_2_53 = 1.0 / (1 << 53)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a bijective avalanche mix on uint64."""
    x = x + _GOLDEN
    x = (x ^ (x >> _U64(30))) * _MIX1
    x = (x ^ (x >> _U64(27))) * _MIX2
    return x ^ (x >> _U64(31))


def _as_u64(value: int) -> np.uint64:
    return _U64(int(value) & _MASK64)


def counter_slot_keys(seeds, slot: int) -> np.ndarray:
    """Per-trial stream keys of one slot: ``splitmix64(splitmix64(seed)
    ^ slot)``.  This is the exact intermediate of
    :func:`counter_uniforms`; the bit-packed and compiled engine tiers
    use it to draw the same uniforms word-by-word."""
    seeds_arr = np.atleast_1d(np.asarray(seeds))
    if seeds_arr.dtype != np.uint64:
        seeds_arr = (seeds_arr.astype(object) & _MASK64).astype(np.uint64)
    return _splitmix64(_splitmix64(seeds_arr) ^ _as_u64(slot))


def bernoulli_threshold(p: float) -> int:
    """Smallest integer T with ``T * 2**-53 >= p``.

    :func:`counter_uniforms` produces ``u = k * 2**-53`` for an integer
    ``k < 2**53``; every such product is exact in float64, so the float
    comparison ``u >= p`` is equivalent to the integer comparison
    ``k >= T``.  The packed/compiled loss paths use the integer form and
    stay bit-identical to the numpy tier.  ``T == 2**53`` means no draw
    survives (p too close to 1); ``T == 0`` means every draw survives.
    """
    if p <= 0.0:
        return 0
    t = int(np.ceil(p * float(1 << 53)))
    if t > (1 << 53):
        return 1 << 53
    # Float rounding in the ceil can land one off in either direction;
    # nudge with exact comparisons.
    while t > 0 and (t - 1) * _INV_2_53 >= p:
        t -= 1
    while t < (1 << 53) and t * _INV_2_53 < p:
        t += 1
    return t


def counter_uniforms(seeds, slot: int, count: int) -> np.ndarray:
    """Uniforms in [0, 1) for every ``(seed, slot, index)`` triple.

    *seeds* is a scalar or a 1-D array of B trial seeds; the result has
    shape ``(count,)`` for a scalar seed and ``(B, count)`` otherwise.
    Each value depends only on its own triple (a stateless counter RNG),
    so computing a single row or the whole B-row grid yields bit-identical
    numbers — the property that makes batched trials exactly reproduce
    serial ones.
    """
    key = counter_slot_keys(seeds, slot)
    idx = np.arange(count, dtype=np.uint64)
    bits = _splitmix64(key[:, None] ^ idx[None, :])
    u = (bits >> _U64(11)).astype(np.float64) * _INV_2_53
    return u[0] if np.isscalar(seeds) or np.ndim(seeds) == 0 else u


def trial_seeds(seed: int, parameter: float, trials: int) -> np.ndarray:
    """Decorrelated per-trial seeds for one point of a parameter sweep.

    Mixes the sweep *parameter* (loss rate, failure count, ...) into the
    stream so that different parameters draw genuinely different
    randomness.  The previous ``seed * 1000 + trial`` scheme ignored the
    parameter entirely: every loss rate of a degradation curve reused the
    identical erasure pattern, correlating the whole curve.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    param_bits = np.float64(parameter).view(np.uint64)
    base = _splitmix64(np.array([_as_u64(seed)])) ^ param_bits
    return _splitmix64(_splitmix64(base) ^ np.arange(trials, dtype=np.uint64))


class CounterBernoulliLoss(LossProcess):
    """Bernoulli erasures drawn from the counter-based RNG.

    Semantically identical to :class:`BernoulliLoss` (i.i.d. erasure with
    probability p, deterministic per ``(seed, slot)``), but each decode's
    fate is a pure function of ``(seed, slot, node)`` — no generator
    state — so B trials' draws vectorise into one ``(B, n)`` pass
    (:class:`BernoulliBatchLoss`).
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        u = counter_uniforms(self.seed, slot, received.shape[0])
        return received & (u >= self.p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CounterBernoulliLoss p={self.p} seed={self.seed}>"


class CounterBurstLoss(LossProcess):
    """Whole-slot blackouts drawn from the counter-based RNG.

    *length* extends each burst: a burst *starting* at slot s (its start
    draw fires with probability p) blacks out slots ``s .. s+length-1``,
    so slot t is erased iff any start draw in ``[t-length+1, t]`` fired.
    Being a pure function of the slot window, the process stays stateless
    (slot-order independent) and its batch variant bit-identical.
    ``length=1`` is the original single-slot burst.
    """

    def __init__(self, p: float, seed: int = 0, length: int = 1) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"burst probability must be in [0, 1], got {p}")
        if length < 1:
            raise ValueError(f"burst length must be >= 1, got {length}")
        self.p = float(p)
        self.seed = int(seed)
        self.length = int(length)

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        for s in range(max(1, slot - self.length + 1), slot + 1):
            u = counter_uniforms(self.seed, s, 1)
            if u[0] < self.p:
                return np.zeros_like(received)
        return received

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CounterBurstLoss p={self.p} seed={self.seed} "
                f"length={self.length}>")


# ---------------------------------------------------------------------------
# Batch losses: B independent trials' channels in one array operation
# ---------------------------------------------------------------------------

class BatchLoss(abc.ABC):
    """Per-slot erasure process over a ``(B, n)`` batch of trials.

    Contract: row *b* of :meth:`apply_batch` must equal what
    :meth:`trial_loss` (b)'s serial ``apply`` would do to that row — the
    serial-equivalence invariant the differential suite enforces.
    """

    trials: int

    @abc.abstractmethod
    def apply_batch(self, slot: int, received: np.ndarray) -> np.ndarray:
        """Return the subset of *received* ``(B, n)`` surviving *slot*."""

    @abc.abstractmethod
    def trial_loss(self, trial: int) -> LossProcess:
        """The serial :class:`LossProcess` equivalent of one trial's row."""

    def slice_trials(self, lo: int, hi: int) -> "BatchLoss":
        """The sub-batch covering trial rows ``lo:hi``.

        Used by trial-dimension sharding: because the counter RNG keys
        every draw by the trial's own seed (not its batch position),
        slicing the seed array yields shard results bit-identical to the
        unsharded run.  Subclasses without a slice stay shard-ineligible.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support trial slicing")


class BernoulliBatchLoss(BatchLoss):
    """B independent Bernoulli channels, one vectorised draw per slot.

    Row *b* is bit-identical to ``CounterBernoulliLoss(p, seeds[b])``.
    """

    def __init__(self, p: float, seeds: Sequence[int]) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seeds = np.asarray(
            [int(s) & _MASK64 for s in np.asarray(seeds).tolist()],
            dtype=np.uint64)
        if self.seeds.ndim != 1 or len(self.seeds) == 0:
            raise ValueError("seeds must be a non-empty 1-D sequence")
        self.trials = len(self.seeds)

    def apply_batch(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        u = counter_uniforms(self.seeds, slot, received.shape[1])
        return received & (u >= self.p)

    def trial_loss(self, trial: int) -> LossProcess:
        return CounterBernoulliLoss(self.p, int(self.seeds[trial]))

    def slice_trials(self, lo: int, hi: int) -> "BernoulliBatchLoss":
        return BernoulliBatchLoss(self.p, self.seeds[lo:hi])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BernoulliBatchLoss p={self.p} trials={self.trials}>"


class BurstBatchLoss(BatchLoss):
    """B independent blackout channels, one draw window per slot.

    Row *b* is bit-identical to ``CounterBurstLoss(p, seeds[b], length)``.
    """

    def __init__(self, p: float, seeds: Sequence[int],
                 length: int = 1) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"burst probability must be in [0, 1], got {p}")
        if length < 1:
            raise ValueError(f"burst length must be >= 1, got {length}")
        self.p = float(p)
        self.seeds = np.asarray(
            [int(s) & _MASK64 for s in np.asarray(seeds).tolist()],
            dtype=np.uint64)
        if self.seeds.ndim != 1 or len(self.seeds) == 0:
            raise ValueError("seeds must be a non-empty 1-D sequence")
        self.trials = len(self.seeds)
        self.length = int(length)

    def apply_batch(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        return received & self.slot_survival(slot)[:, None]

    def slot_survival(self, slot: int) -> np.ndarray:
        """``(B,)`` True where the trial's slot is *not* blacked out.

        Shared by the dense tier (broadcast over columns) and the
        packed/compiled tiers (zero the trial's word rows), so every
        tier draws the identical burst pattern.
        """
        survive = np.ones(self.trials, dtype=bool)
        if self.p == 0.0:
            return survive
        for s in range(max(1, slot - self.length + 1), slot + 1):
            u = counter_uniforms(self.seeds, s, 1)
            survive &= u[:, 0] >= self.p
        return survive

    def trial_loss(self, trial: int) -> LossProcess:
        return CounterBurstLoss(self.p, int(self.seeds[trial]), self.length)

    def slice_trials(self, lo: int, hi: int) -> "BurstBatchLoss":
        return BurstBatchLoss(self.p, self.seeds[lo:hi], self.length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BurstBatchLoss p={self.p} trials={self.trials} "
                f"length={self.length}>")


class PerTrialBatchLoss(BatchLoss):
    """Adapter batching arbitrary serial :class:`LossProcess` objects.

    Applies each trial's own process to its row — a python loop over B,
    so no vectorisation win, but it lets the batch engine reproduce runs
    that used the legacy PCG64 losses (or mixed loss kinds) exactly.
    """

    def __init__(self, losses: Sequence[LossProcess]) -> None:
        self.losses: List[LossProcess] = list(losses)
        if not self.losses:
            raise ValueError("need at least one trial loss")
        self.trials = len(self.losses)

    def apply_batch(self, slot: int, received: np.ndarray) -> np.ndarray:
        out = np.empty_like(received)
        for b, loss in enumerate(self.losses):
            out[b] = loss.apply(slot, received[b])
        return out

    def trial_loss(self, trial: int) -> LossProcess:
        return self.losses[trial]

    def slice_trials(self, lo: int, hi: int) -> "PerTrialBatchLoss":
        return PerTrialBatchLoss(self.losses[lo:hi])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PerTrialBatchLoss trials={self.trials}>"


def dead_mask_from_coords(topology, coords: Iterable) -> np.ndarray:
    """Boolean per-node mask flagging the failed nodes in *coords*."""
    mask = np.zeros(topology.num_nodes, dtype=bool)
    for c in coords:
        mask[topology.index(c)] = True
    return mask


def random_dead_mask(topology, count: int, seed: int = 0,
                     protect: Sequence[int] = ()) -> np.ndarray:
    """Kill *count* uniformly random nodes (never the ones in *protect*).

    Deterministic given the seed; used by the fault-injection benchmarks.
    """
    n = topology.num_nodes
    protected = set(int(v) for v in protect)
    candidates = [v for v in range(n) if v not in protected]
    if count > len(candidates):
        raise ValueError(
            f"cannot kill {count} of {len(candidates)} candidate nodes")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(candidates), size=count, replace=False)
    mask = np.zeros(n, dtype=bool)
    for k in chosen:
        mask[candidates[int(k)]] = True
    return mask
