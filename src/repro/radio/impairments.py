"""Channel impairments: packet loss and node failures.

The paper assumes an ideal (loss-free) channel — its only impairment is
the collision model.  Real sensor radios also suffer fading and
interference, and sensor nodes die.  These models let the benchmarks
measure how gracefully the compiled schedules degrade (and what hardening
them costs); they are *extensions*, clearly separated from the paper's
own experiments.

Loss processes are deterministic given their seed **per slot**, not per
call: the same slot always draws the same erasures, so a reactive run and
a replay of its schedule see identical channels.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np


class LossProcess(abc.ABC):
    """Per-slot packet-erasure process applied after collision resolution."""

    @abc.abstractmethod
    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        """Return the subset of *received* that survives slot *slot*."""


class PerfectChannel(LossProcess):
    """No losses (the paper's channel)."""

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        return received


class BernoulliLoss(LossProcess):
    """Each successful decode is independently erased with probability p.

    Models fast fading / ambient interference.  Erasures are drawn from a
    per-slot RNG seeded by ``(seed, slot)`` so outcomes do not depend on
    the order in which slots are simulated.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        rng = np.random.default_rng((self.seed, slot))
        survive = rng.random(received.shape[0]) >= self.p
        return received & survive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BernoulliLoss p={self.p} seed={self.seed}>"


class BurstLoss(LossProcess):
    """Whole-slot blackouts: with probability p a slot erases everything.

    Models wide-band interference bursts (e.g. a colocated radar sweep) —
    the hardest case for slot-synchronous schedules because an entire
    wavefront is lost at once.
    """

    def __init__(self, p: float, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"burst probability must be in [0, 1], got {p}")
        self.p = float(p)
        self.seed = int(seed)

    def apply(self, slot: int, received: np.ndarray) -> np.ndarray:
        if self.p == 0.0:
            return received
        rng = np.random.default_rng((self.seed, slot))
        if rng.random() < self.p:
            return np.zeros_like(received)
        return received

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BurstLoss p={self.p} seed={self.seed}>"


def dead_mask_from_coords(topology, coords: Iterable) -> np.ndarray:
    """Boolean per-node mask flagging the failed nodes in *coords*."""
    mask = np.zeros(topology.num_nodes, dtype=bool)
    for c in coords:
        mask[topology.index(c)] = True
    return mask


def random_dead_mask(topology, count: int, seed: int = 0,
                     protect: Sequence[int] = ()) -> np.ndarray:
    """Kill *count* uniformly random nodes (never the ones in *protect*).

    Deterministic given the seed; used by the fault-injection benchmarks.
    """
    n = topology.num_nodes
    protected = set(int(v) for v in protect)
    candidates = [v for v in range(n) if v not in protected]
    if count > len(candidates):
        raise ValueError(
            f"cannot kill {count} of {len(candidates)} candidate nodes")
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(candidates), size=count, replace=False)
    mask = np.zeros(n, dtype=bool)
    for k in chosen:
        mask[candidates[int(k)]] = True
    return mask
