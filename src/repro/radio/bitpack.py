"""Bit-packed per-trial node state: ``uint64`` words instead of booleans.

The dense batched kernel (:meth:`~repro.radio.channel.SlotKernel.
resolve_batch`) materialises ``(trials, n)`` arrays every slot; at the
64x64-grid / 1024-trial target that is tens of MB of memory traffic per
slot for state that is fundamentally one bit per (trial, node).  This
module packs that state 64x denser: a trial's node set is
``ceil(n / 64)`` little-endian ``uint64`` words (bit ``v & 63`` of word
``v >> 6`` is node ``v``), so a whole 4096-node trial row is 512 bytes
— cache-resident — and set algebra (union, intersection, difference)
runs one word op per 64 nodes.

:class:`PackedSlotKernel` resolves a collision slot entirely in word
space with a saturating carry-save counter: per (trial, word) cell the
pair

* ``ones`` — nodes heard >= 1,
* ``twos`` — nodes heard >= 2 (the saturating carry),

is accumulated over the transmitters' sparse neighbour-word entries
under the commutative monoid ``(o, t) + (o', t') = (o|o', t|t'|(o &
o'))``, which saturates at two exactly because the collision model
only distinguishes *silence / clean decode / collision*.  ``received
= ones & ~twos`` and ``collided = twos`` (both with the transmitters'
own bits cleared: half-duplex) then match the dense kernel bit for
bit; the differential suites pin that down against the dense and the
pure-python engines.

Reach/tx accounting over packed rows uses :func:`popcount`
(``np.bitwise_count``); sparse (trial, node) extraction preserves the
(trial, node)-sorted order the event logs rely on because words ascend
within a trial row and bits ascend within a word.

Packing assumes a little-endian host (bit ``i`` of the uint64 view is
bit ``i % 8`` of byte ``i // 8``); :func:`packing_supported` gates the
engine tier so a big-endian host silently falls back to the dense
kernel instead of corrupting results.
"""

from __future__ import annotations

import sys
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "PackedSlotKernel",
    "num_words",
    "pack_bool_matrix",
    "packing_supported",
    "popcount",
    "unpack_word_matrix",
    "words_to_pairs",
]

_U64 = np.uint64
#: BIT[j] = 1 << j as uint64 (python ints promote int64 and overflow).
BIT = np.uint64(1) << np.arange(64, dtype=np.uint64)
_LANES = np.arange(64, dtype=np.uint64)
_EMPTY = np.empty(0, dtype=np.int64)

#: Largest node count for which the packed neighbour-word table is
#: built (memory: ``n * ceil(n/64) * 8`` bytes, 32 MB at the cap).
#: Beyond it the engine falls back to the dense CSR kernel, whose
#: footprint stays O(edges).
MAX_PACKED_NODES = 16384


def packing_supported() -> bool:
    """True where the uint64 view of ``np.packbits(bitorder='little')``
    output has bit ``i`` of a word meaning node ``64*w + i`` — i.e. on
    little-endian hosts.  Big-endian hosts use the dense kernel."""
    return sys.byteorder == "little"


def num_words(num_nodes: int) -> int:
    """Packed words per trial row: ``ceil(n / 64)``."""
    return (int(num_nodes) + 63) >> 6


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of a uint64 array (any shape)."""
    return np.bitwise_count(words)


def pack_bool_matrix(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(B, n)`` matrix into ``(B, ceil(n/64))`` words.

    Bit ``v & 63`` of word ``v >> 6`` in row *b* is ``mask[b, v]``;
    the pad bits of the last word are zero.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("pack_bool_matrix expects a (B, n) matrix")
    b, n = mask.shape
    w = num_words(n)
    out = np.zeros((b, w * 8), dtype=np.uint8)
    packed = np.packbits(mask, axis=1, bitorder="little")
    out[:, :packed.shape[1]] = packed
    return out.view(np.uint64)


def unpack_word_matrix(words: np.ndarray, num_nodes: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: ``(B, W)`` words to a
    boolean ``(B, n)`` matrix."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    bits = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return bits[:, :num_nodes].astype(bool)


def words_to_pairs(active_trials: np.ndarray, words: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Sparse (trial, node) extraction of a compact ``(A, W)`` word
    matrix whose row *a* belongs to trial ``active_trials[a]``.

    Returns ``(trials, nodes)`` int64 pairs sorted by (trial, node):
    ``nonzero`` walks rows then words in order, and bit lanes unpack in
    ascending order, so no sort is needed — the property the batched
    event logs rely on.
    """
    a_idx, w_idx = words.nonzero()
    if len(a_idx) == 0:
        return _EMPTY, _EMPTY
    vals = np.ascontiguousarray(words[a_idx, w_idx])
    lanes = np.unpackbits(vals[:, None].view(np.uint8), axis=1,
                          bitorder="little")
    m_idx, bit_idx = lanes.nonzero()
    tr = active_trials[a_idx[m_idx]].astype(np.int64, copy=False)
    nd = (w_idx[m_idx].astype(np.int64) << 6) + bit_idx
    return tr, nd


def _carry_save_reduce(vals: np.ndarray, gstart: np.ndarray,
                       gcount: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group (ones, twos) of *vals* grouped into sorted runs.

    Pairwise tree reduction under the carry-save monoid: each pass
    halves every group, so a 300-entry group reduces in ~9 vectorised
    passes.  Returns one (ones, twos) pair per group, in group order.
    """
    ones_v = vals
    twos_v = None  # all-zero until the first combining pass
    while gcount.max() > 1:
        m = len(ones_v)
        pos = np.arange(m, dtype=np.int64) - np.repeat(gstart, gcount)
        seglen = np.repeat(gcount, gcount)
        keep = (pos & 1) == 0
        pidx = np.flatnonzero(keep & (pos + 1 < seglen))
        sel = ((pos[keep] + 1) < seglen[keep])
        o2 = ones_v[pidx + 1]
        new_ones = ones_v[keep]
        carry = new_ones[sel] & o2
        if twos_v is None:
            new_twos = np.zeros_like(new_ones)
            new_twos[sel] = carry
        else:
            new_twos = twos_v[keep]
            new_twos[sel] |= twos_v[pidx + 1] | carry
        new_ones[sel] |= o2
        ones_v, twos_v = new_ones, new_twos
        gcount = (gcount + 1) >> 1
        gstart = np.r_[np.int64(0), np.cumsum(gcount[:-1])]
    if twos_v is None:
        twos_v = np.zeros_like(ones_v)
    return ones_v, twos_v


class PackedSlotKernel:
    """Word-space collision resolve bound to one topology's adjacency.

    Holds the packed neighbourhood table ``nbr_words`` (``(n, W)``
    uint64: row *v* is the bit set of *v*'s neighbours) plus compact
    per-slot scratch.  Built lazily by
    :meth:`~repro.radio.channel.SlotKernel.packed`; gated by
    :data:`MAX_PACKED_NODES` because the table is O(n^2 / 8) bytes.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 num_nodes: int) -> None:
        if not packing_supported():
            raise RuntimeError("bit-packed kernels need a little-endian "
                               "host")
        n = int(num_nodes)
        self.num_nodes = n
        self.words = num_words(n)
        self._indptr = indptr
        self._indices = indices
        degrees = np.diff(indptr)
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        table = np.zeros((n, self.words), dtype=np.uint64)
        # Neighbour lists can share words, so scatter with the or-ufunc.
        np.bitwise_or.at(table, (rows, indices >> 6), BIT[indices & 63])
        self.nbr_words = table
        # Sparse view of the same table: each node's nonzero
        # (word index, word value) entries.  A degree-d node touches at
        # most d words, so a transmitter contributes ~d scalar entries
        # to the slot resolve instead of a full W-word row — the whole
        # point of resolving in the entry domain (see resolve_words).
        nz_r, nz_w = table.nonzero()
        nw_cnt = np.bincount(nz_r, minlength=n).astype(np.int64)
        self._nw_cnt = nw_cnt
        self._nw_ptr = np.r_[np.int64(0), np.cumsum(nw_cnt)]
        self._nw_word = nz_w.astype(np.int64)
        self._nw_val = table[nz_r, nz_w]
        # Compact (A, W) transmitter-word scratch, grown on demand (the
        # carry-save planes come out of the entry reduction fresh).
        self._txw: Optional[np.ndarray] = None

    def _scratch(self, active: int) -> np.ndarray:
        if self._txw is None or self._txw.shape[0] < active:
            self._txw = np.empty((active, self.words), dtype=np.uint64)
        return self._txw[:active]

    def resolve_words(self, tx_nodes: np.ndarray, tx_trials: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray]:
        """Resolve one slot in word space.

        ``(tx_trials[i], tx_nodes[i])`` are the slot's transmission
        pairs, **sorted by (trial, node)** and unique (the engine's
        dedup guarantees both).  Returns ``(active, received, collided,
        txw)``: the sorted unique trials with transmissions, and three
        compact ``(len(active), W)`` word matrices — clean decodes,
        collisions, and the transmitter sets (for sender attribution).
        All three are scratch, valid until the next call.
        """
        k = len(tx_nodes)
        W = self.words
        if k == 0:
            empty = np.empty((0, W), dtype=np.uint64)
            return _EMPTY, empty, empty, empty
        # Segment boundaries of the (sorted) trial column.
        starts = np.flatnonzero(np.r_[True, tx_trials[1:] != tx_trials[:-1]])
        active = tx_trials[starts]
        counts = np.diff(np.r_[starts, k])
        A = len(active)
        txw = self._scratch(A)
        txw[:] = 0
        row = np.repeat(np.arange(A, dtype=np.int64), counts)
        np.bitwise_or.at(txw, (row, tx_nodes >> 6), BIT[tx_nodes & 63])
        # Resolve in the sparse entry domain: each transmitter emits
        # its ~degree nonzero (word, bits) neighbour entries; entries
        # of one (trial, word) cell are combined with the carry-save
        # monoid ``(o, t) + (o', t') = (o|o', t|t'|(o&o'))`` — "heard
        # >= 2" is either part's >= 2 plus bits both parts heard.
        # This touches O(k * degree) scalars where full neighbour rows
        # would touch O(k * W) words.
        cnt = self._nw_cnt[tx_nodes]
        e = int(cnt.sum())
        out_starts = np.cumsum(cnt) - cnt
        pos = (np.arange(e, dtype=np.int64) - out_starts.repeat(cnt)
               + self._nw_ptr[tx_nodes].repeat(cnt))
        key = row.repeat(cnt) * W + self._nw_word[pos]
        order = np.argsort(key, kind="stable")  # radix: key < A * W
        ks = key[order]
        vs = self._nw_val[pos][order]
        gstart = np.flatnonzero(np.r_[True, ks[1:] != ks[:-1]])
        gcount = np.diff(np.r_[gstart, e])
        ku = ks[gstart]
        g = len(gstart)
        p = int(gcount.max())
        ones = np.zeros(A * W, dtype=np.uint64)
        twos = np.zeros(A * W, dtype=np.uint64)
        if p == 1:
            ones[ku] = vs
        elif g * p <= max(16 * e, 1 << 16):
            # Pad each cell's entries to a (g, p) matrix; a cumulative
            # OR along the rows then yields ones as the last column and
            # twos as the OR of entry & prefix-before-entry — all in a
            # few full-array C passes.
            posn = np.arange(e, dtype=np.int64) - gstart.repeat(gcount)
            padded = np.zeros(g * p, dtype=np.uint64)
            padded[np.repeat(np.arange(g, dtype=np.int64), gcount) * p
                   + posn] = vs
            padded = padded.reshape(g, p)
            pre = np.bitwise_or.accumulate(padded, axis=1)
            ones[ku] = pre[:, -1]
            twos[ku] = np.bitwise_or.reduce(padded[:, 1:] & pre[:, :-1],
                                            axis=1)
        else:
            # Heavily skewed cell sizes would blow the padding up;
            # fall back to the pairwise tree reduction (log2(p) passes
            # over the unpadded entries).
            ones_v, twos_v = _carry_save_reduce(vs, gstart, gcount)
            ones[ku] = ones_v
            twos[ku] = twos_v
        ones = ones.reshape(A, W)
        twos = twos.reshape(A, W)
        # Half-duplex: a transmitter's own bit is neither a decode nor
        # a collision in its trial.
        quiet = ~txw
        received = ones & ~twos & quiet
        collided = twos & quiet
        return active, received, collided, txw

    def attribute_senders(self, rx_trials: np.ndarray,
                          rx_nodes: np.ndarray,
                          active: np.ndarray,
                          txw: np.ndarray,
                          return_epos: bool = False):
        """Unique delivering neighbour of every clean decode.

        ``(rx_trials, rx_nodes)`` are received pairs (subset of the
        trials in *active*); *txw* is the compact transmitter word
        matrix of the same slot.  A received node heard exactly one
        transmitter, so the bit test over its CSR neighbour row has
        exactly one hit.

        With ``return_epos`` the CSR data position of each (receiver ->
        sender) edge comes back alongside the senders — the recovery
        tier keys its packed known-edge bitset on exactly that index,
        so attribution doubles as the edge lookup for free.
        """
        if len(rx_nodes) == 0:
            return (_EMPTY, _EMPTY) if return_epos else _EMPTY
        starts = self._indptr[rx_nodes]
        counts = self._indptr[rx_nodes + 1] - starts
        total = int(counts.sum())
        out_starts = counts.cumsum() - counts
        pos = (np.arange(total, dtype=np.int64)
               - out_starts.repeat(counts) + starts.repeat(counts))
        nbrs = self._indices[pos]
        arow = np.searchsorted(active, rx_trials).repeat(counts)
        hit = ((txw[arow, nbrs >> 6] >> (nbrs & 63).astype(np.uint64)
                ) & _U64(1)).astype(bool)
        if return_epos:
            return nbrs[hit], pos[hit]
        return nbrs[hit]
