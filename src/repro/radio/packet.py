"""Broadcast packet model.

The paper broadcasts a single message of fixed length (512 bits in the
evaluation).  We keep a tiny packet abstraction so the simulator's energy
accounting, the lifetime extension and the examples can vary payload sizes
and tag packets with metadata without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class Packet:
    """An immutable broadcast payload description.

    Parameters
    ----------
    bits:
        Payload length in bits (the ``k`` of Eqs. 1-2).
    seq:
        Sequence number identifying the broadcast (nodes detect duplicates
        by sequence number).
    source:
        1-based coordinate of the originating node.
    meta:
        Free-form metadata (e.g. sensor reading) — not used by the engine.
    """

    bits: int = 512
    seq: int = 0
    source: tuple = ()
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"packet length must be positive, got {self.bits}")
        if self.seq < 0:
            raise ValueError(f"sequence number must be >= 0, got {self.seq}")

    def with_seq(self, seq: int) -> "Packet":
        """Copy of this packet with a new sequence number."""
        return Packet(bits=self.bits, seq=seq, source=self.source,
                      meta=self.meta)
