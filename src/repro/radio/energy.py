"""First Order Radio Model (paper Section 2, after Heinzelman et al.).

The paper adopts the First Order Radio Model of LEACH [8]:

* electronics cost ``E_elec = 50 nJ/bit`` for both transmitting and
  receiving circuitry, and
* amplifier cost ``E_amp = 100 pJ/bit/m^2`` for the transmitter to reach a
  receiver ``d`` metres away.

Transmitting ``k`` bits over distance ``d`` (Eq. 1):

    E_Tx(k, d) = E_elec * k + E_amp * k * d**2

Receiving ``k`` bits (Eq. 2):

    E_Rx(k) = E_elec * k

All energies are in joules; ``k`` in bits, ``d`` in metres.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper Section 2: 50 nJ/bit.
E_ELEC_J_PER_BIT = 50e-9
#: Paper Section 2: 100 pJ/bit/m^2.
E_AMP_J_PER_BIT_M2 = 100e-12

#: Paper Section 4 defaults: packet length 512 bit, neighbour spacing 0.5 m.
PAPER_PACKET_BITS = 512
PAPER_SPACING_M = 0.5


@dataclass(frozen=True)
class FirstOrderRadioModel:
    """The paper's energy model with configurable constants.

    The defaults reproduce the paper exactly; tests also exercise other
    constants to check the formulas rather than the numbers.
    """

    e_elec: float = E_ELEC_J_PER_BIT
    e_amp: float = E_AMP_J_PER_BIT_M2

    def __post_init__(self) -> None:
        if self.e_elec < 0 or self.e_amp < 0:
            raise ValueError("energy constants must be non-negative")

    def tx_energy(self, bits: float, distance_m: float) -> float:
        """Energy (J) to transmit *bits* over *distance_m* (Eq. 1)."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        if distance_m < 0:
            raise ValueError(f"distance must be >= 0, got {distance_m}")
        return self.e_elec * bits + self.e_amp * bits * distance_m ** 2

    def rx_energy(self, bits: float) -> float:
        """Energy (J) to receive *bits* (Eq. 2)."""
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        return self.e_elec * bits

    # -- vectorised batch forms (used by the metrics accounting) --------

    def tx_energy_batch(self, bits: np.ndarray | float,
                        distance_m: np.ndarray | float) -> np.ndarray:
        """Vectorised :meth:`tx_energy` (broadcasts like numpy)."""
        bits = np.asarray(bits, dtype=np.float64)
        distance_m = np.asarray(distance_m, dtype=np.float64)
        if (bits < 0).any() or (distance_m < 0).any():
            raise ValueError("bits and distances must be >= 0")
        return self.e_elec * bits + self.e_amp * bits * distance_m ** 2

    def rx_energy_batch(self, bits: np.ndarray | float) -> np.ndarray:
        """Vectorised :meth:`rx_energy`."""
        bits = np.asarray(bits, dtype=np.float64)
        if (bits < 0).any():
            raise ValueError("bits must be >= 0")
        return self.e_elec * bits

    def broadcast_energy(self, num_tx: int, num_rx: int, bits: float,
                         distance_m: float) -> float:
        """Total energy of a broadcast with *num_tx* transmissions (each at
        range *distance_m*) and *num_rx* successful receptions.

        This is exactly how the paper computes its Tables 2-4 "Power
        consumption" column from the Tx and Rx counts.
        """
        if num_tx < 0 or num_rx < 0:
            raise ValueError("counts must be >= 0")
        return (num_tx * self.tx_energy(bits, distance_m)
                + num_rx * self.rx_energy(bits))


#: Module-level default model with the paper's constants.
PAPER_RADIO_MODEL = FirstOrderRadioModel()


#: Standard LEACH two-ray constants: free-space amplifier below the
#: crossover distance, multipath (d^4) beyond it.
E_FS_J_PER_BIT_M2 = 10e-12
E_MP_J_PER_BIT_M4 = 0.0013e-12


@dataclass(frozen=True)
class TwoRayRadioModel(FirstOrderRadioModel):
    """First-order model with the two-ray ground amplifier (LEACH 2002).

    Below the crossover distance ``d0 = sqrt(e_fs / e_mp)`` (~87 m with
    the standard constants) the amplifier cost is ``e_fs * k * d^2``;
    beyond it, ``e_mp * k * d^4``.  The paper's own evaluation never
    leaves the short range, so it uses the flat d^2 model; the two-ray
    model matters for the LEACH-style base-station uplinks in
    :mod:`repro.gather`, where cluster heads transmit tens of metres.
    """

    e_fs: float = E_FS_J_PER_BIT_M2
    e_mp: float = E_MP_J_PER_BIT_M4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.e_fs <= 0 or self.e_mp <= 0:
            raise ValueError("two-ray constants must be positive")

    @property
    def crossover_m(self) -> float:
        """Distance where free-space and multipath amplifier costs meet."""
        return (self.e_fs / self.e_mp) ** 0.5

    def tx_energy(self, bits: float, distance_m: float) -> float:
        if bits < 0:
            raise ValueError(f"bits must be >= 0, got {bits}")
        if distance_m < 0:
            raise ValueError(f"distance must be >= 0, got {distance_m}")
        if distance_m < self.crossover_m:
            amp = self.e_fs * bits * distance_m ** 2
        else:
            amp = self.e_mp * bits * distance_m ** 4
        return self.e_elec * bits + amp

    def tx_energy_batch(self, bits, distance_m) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.float64)
        distance_m = np.asarray(distance_m, dtype=np.float64)
        if (bits < 0).any() or (distance_m < 0).any():
            raise ValueError("bits and distances must be >= 0")
        amp = np.where(distance_m < self.crossover_m,
                       self.e_fs * bits * distance_m ** 2,
                       self.e_mp * bits * distance_m ** 4)
        return self.e_elec * bits + amp
