"""Deterministic unicast routes on the regular lattices.

The paper positions its broadcast work next to the *routing* literature
for the same topologies — reference [12] (power-efficient routing on
regular WSN lattices) and [9] (load-balanced routing for wireless access
networks, which the paper says its protocols also suit).  This module
provides that substrate: hop-by-hop unicast routes exploiting each
lattice's structure, so the examples and ablations can compare broadcast
against routed delivery and study load balance.

Route families:

* **dimension-ordered** — the classic X-then-Y(-then-Z) route; on 2D-8 it
  walks the diagonal first (the Fig. 6 insight: diagonal hops make
  progress on both axes at once); on the brick mesh it zig-zags through
  the available vertical edges.
* **BFS** — true shortest path on any topology (tie-broken
  deterministically); used as the correctness oracle for the structured
  routes and as the router for irregular topologies.
"""

from __future__ import annotations

from typing import List

from ..topology.base import Topology
from ..topology.mesh2d import Mesh2D3, Mesh2D4, Mesh2D8
from ..topology.mesh3d import Mesh3D6


def bfs_route(topology: Topology, src, dst) -> List[tuple]:
    """Shortest path from *src* to *dst* (BFS parent-walk, deterministic
    smallest-index tie-breaking).  Works on every topology."""
    s, d = topology.index(src), topology.index(dst)
    if s == d:
        return [tuple(src)]
    import numpy as np
    n = topology.num_nodes
    parent = np.full(n, -1, dtype=np.int64)
    parent[s] = s
    frontier = [s]
    while frontier and parent[d] < 0:
        nxt = []
        for u in frontier:
            for v in sorted(int(w) for w in topology.neighbor_indices(u)):
                if parent[v] < 0:
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    if parent[d] < 0:
        raise ValueError(f"{dst} unreachable from {src}")
    path = [d]
    while path[-1] != s:
        path.append(int(parent[path[-1]]))
    return [tuple(topology.coord(v)) for v in reversed(path)]


def _step_towards(value: int, target: int) -> int:
    if value < target:
        return 1
    if value > target:
        return -1
    return 0


def xy_route(mesh: Mesh2D4, src, dst) -> List[tuple]:
    """Dimension-ordered route on 2D-4: resolve X, then Y."""
    x, y = src
    dx_, dy_ = dst
    path = [(x, y)]
    while x != dx_:
        x += _step_towards(x, dx_)
        path.append((x, y))
    while y != dy_:
        y += _step_towards(y, dy_)
        path.append((x, y))
    return path


def diagonal_route(mesh: Mesh2D8, src, dst) -> List[tuple]:
    """2D-8 route: diagonal while both axes differ, then straight.

    Chebyshev-optimal — the routing counterpart of the paper's Fig. 6
    argument for preferring diagonal progress."""
    x, y = src
    dx_, dy_ = dst
    path = [(x, y)]
    while (x, y) != (dx_, dy_):
        x += _step_towards(x, dx_)
        y += _step_towards(y, dy_)
        path.append((x, y))
    return path


def brick_route(mesh: Mesh2D3, src, dst) -> List[tuple]:
    """2D-3 route: walk X while drifting through the usable vertical
    edges (only every other column has one in the needed direction)."""
    x, y = src
    dx_, dy_ = dst
    path = [(x, y)]
    guard = 4 * (mesh.m + mesh.n) + 8
    while (x, y) != (dx_, dy_) and len(path) < guard:
        need_dy = _step_towards(y, dy_)
        if need_dy != 0 and \
                Mesh2D3.vertical_neighbor_offset(x, y) == need_dy and \
                mesh.contains((x, y + need_dy)):
            y += need_dy
        elif x != dx_:
            x += _step_towards(x, dx_)
        else:
            # correct column but wrong vertical parity: sidestep.  Prefer
            # stepping inward so border destinations stay reachable.
            step = 1 if x < mesh.m else -1
            x += step
        path.append((x, y))
    if (x, y) != (dx_, dy_):
        raise RuntimeError(f"brick route {src}->{dst} failed to converge")
    return path


def xyz_route(mesh: Mesh3D6, src, dst) -> List[tuple]:
    """Dimension-ordered route on 3D-6: X, then Y, then Z."""
    x, y, z = src
    dx_, dy_, dz_ = dst
    path = [(x, y, z)]
    while x != dx_:
        x += _step_towards(x, dx_)
        path.append((x, y, z))
    while y != dy_:
        y += _step_towards(y, dy_)
        path.append((x, y, z))
    while z != dz_:
        z += _step_towards(z, dz_)
        path.append((x, y, z))
    return path


def route(topology: Topology, src, dst) -> List[tuple]:
    """The structured route for *topology* (BFS fallback otherwise)."""
    if not topology.contains(src) or not topology.contains(dst):
        raise ValueError(f"route endpoints {src}->{dst} not in {topology!r}")
    if isinstance(topology, Mesh2D4):
        return xy_route(topology, src, dst)
    if isinstance(topology, Mesh2D8):
        return diagonal_route(topology, src, dst)
    if isinstance(topology, Mesh2D3):
        return brick_route(topology, src, dst)
    if isinstance(topology, Mesh3D6):
        return xyz_route(topology, src, dst)
    return bfs_route(topology, src, dst)


def validate_route(topology: Topology, path: List[tuple]) -> None:
    """Check that *path* is a connected lattice walk; raises on failure."""
    if not path:
        raise AssertionError("empty route")
    for a, b in zip(path, path[1:]):
        if b not in topology.neighbors(a):
            raise AssertionError(f"route step {a} -> {b} is not an edge")
