"""Unicast flow evaluation: energy, latency and relay load of routes.

Companion to :mod:`repro.routing.paths`: given a set of flows
(source/destination pairs), account for the per-node energy (every hop is
one transmission by the upstream node and one reception by the
downstream node in the First Order Radio Model) and the relay *load*
distribution — the quantity reference [9]'s load-balanced routing
optimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..topology.base import Topology
from . import paths

Router = Callable[[Topology, tuple, tuple], List[tuple]]


@dataclass(frozen=True)
class FlowReport:
    """Aggregate accounting for a batch of unicast flows."""

    num_flows: int
    total_hops: int
    max_hops: int
    energy_j: float
    tx_load: np.ndarray        # transmissions forwarded per node
    max_load: int
    mean_load: float

    @property
    def load_imbalance(self) -> float:
        """Max/mean forwarding load (1.0 = perfectly even)."""
        if self.mean_load == 0:
            return 1.0
        return self.max_load / self.mean_load

    def as_row(self) -> dict:
        return {
            "flows": self.num_flows,
            "total_hops": self.total_hops,
            "max_hops": self.max_hops,
            "energy_J": self.energy_j,
            "max_load": self.max_load,
            "load_imbalance": round(self.load_imbalance, 2),
        }


def evaluate_flows(
    topology: Topology,
    flows: Sequence[Tuple[tuple, tuple]],
    router: Optional[Router] = None,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
) -> FlowReport:
    """Route every ``(src, dst)`` flow and account energy and load.

    Each hop costs one unicast transmission at the hop's Euclidean length
    plus one reception.  Load counts transmissions per node (source
    included — it forwards its own packet).
    """
    if router is None:
        router = paths.route
    n = topology.num_nodes
    pos = topology.positions()
    tx_load = np.zeros(n, dtype=np.int64)
    energy = 0.0
    total_hops = 0
    max_hops = 0
    for src, dst in flows:
        path = router(topology, src, dst)
        paths.validate_route(topology, path)
        hops = len(path) - 1
        total_hops += hops
        max_hops = max(max_hops, hops)
        for a, b in zip(path, path[1:]):
            ia, ib = topology.index(a), topology.index(b)
            d = float(np.linalg.norm(pos[ia] - pos[ib]))
            energy += model.tx_energy(packet_bits, d)
            energy += model.rx_energy(packet_bits)
            tx_load[ia] += 1
    return FlowReport(
        num_flows=len(flows),
        total_hops=total_hops,
        max_hops=max_hops,
        energy_j=energy,
        tx_load=tx_load,
        max_load=int(tx_load.max()) if len(flows) else 0,
        mean_load=float(tx_load.mean()) if len(flows) else 0.0,
    )


def valiant_router(seed: int = 0) -> Router:
    """Load-balancing router: route via a random intermediate node.

    Valiant's trick, the randomised core of load-balanced routing
    schemes like the paper's reference [9]: each flow goes
    ``src -> random waypoint -> dst`` along structured routes, trading
    ~2x path length for a flattened load distribution under adversarial
    traffic.
    """
    rng = np.random.default_rng(seed)

    def _route(topology: Topology, src, dst) -> List[tuple]:
        waypoint = topology.coord(int(rng.integers(topology.num_nodes)))
        first = paths.route(topology, src, waypoint)
        second = paths.route(topology, waypoint, dst)
        return first + second[1:]

    return _route


def random_flows(topology: Topology, count: int,
                 seed: int = 0) -> List[Tuple[tuple, tuple]]:
    """*count* uniformly random (src != dst) flow pairs, seeded."""
    rng = np.random.default_rng(seed)
    flows = []
    n = topology.num_nodes
    while len(flows) < count:
        s, d = rng.integers(n), rng.integers(n)
        if s != d:
            flows.append((tuple(topology.coord(int(s))),
                          tuple(topology.coord(int(d)))))
    return flows


def hotspot_flows(topology: Topology, count: int, sink,
                  seed: int = 0) -> List[Tuple[tuple, tuple]]:
    """*count* flows from random sources to one sink — the adversarial
    convergecast-style traffic where shortest-path load concentrates."""
    rng = np.random.default_rng(seed)
    sink = tuple(sink)
    flows = []
    n = topology.num_nodes
    while len(flows) < count:
        s = tuple(topology.coord(int(rng.integers(n))))
        if s != sink:
            flows.append((s, sink))
    return flows
