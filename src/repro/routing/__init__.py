"""Unicast routing substrate for the regular lattices (refs [9], [12])."""

from .paths import (bfs_route, brick_route, diagonal_route, route,
                    validate_route, xy_route, xyz_route)
from .unicast import (FlowReport, evaluate_flows, hotspot_flows,
                      random_flows, valiant_router)

__all__ = [
    "route",
    "bfs_route",
    "xy_route",
    "diagonal_route",
    "brick_route",
    "xyz_route",
    "validate_route",
    "FlowReport",
    "evaluate_flows",
    "random_flows",
    "hotspot_flows",
    "valiant_router",
]
