"""Deterministic fault injection for the serving stack.

The simulated radios have had an adversary since PR 1 — seeded loss
processes, dead nodes, churn.  The *machine* running the simulations
did not: a killed shard worker, a torn store write, or a native-kernel
failure mid-run would stall or tear down the whole pipeline.  This
module gives the infrastructure the same treatment the radios get: a
seeded, replayable adversary.

A :class:`FaultPlan` is a set of :class:`FaultSpec` entries, one per
instrumented *seam* (a named decision point compiled into production
code).  Arming a plan (``with plan.arm(): ...``) installs it as the
process-global adversary; every seam consult is counted, and the spec
decides — by occurrence index, by caller-supplied key, or by seeded
hash rate — whether the fault fires at that consult.  Decisions depend
only on ``(seed, seam, occurrence, key)``, never on wall-clock or
thread timing, so a chaos run is exactly replayable.

Seams compiled into the stack:

========================  ====================================================
``shard.worker_kill``     a shard worker calls ``os._exit`` mid-job
                          (keyed by ``(shard_index, attempt)``)
``store.torn_write``      an ArtifactStore shard write appends partial
                          payload bytes and dies before the index publish
``native.build``          the native kernel fails to build/dlopen when a
                          compiled backend is constructed
``backend.resolve``       a word-space backend faults mid-run (keyed by
                          tier name ``"compiled"``/``"packed"``)
``compile.slow``          a schedule compile stalls for ``delay_s`` seconds
``server.drop_connection``  the server aborts the TCP connection instead
                          of writing a response
``server.garble_response``  the server writes a non-JSON line in place of
                          the response
========================  ====================================================

When no plan is armed every helper is a cheap no-op, so the seams cost
one global read on hot paths.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "canonical_plan",
    "active",
    "fires",
    "check",
    "sleep_if",
    "SHARD_KILL",
    "STORE_TORN",
    "NATIVE_BUILD",
    "BACKEND_RESOLVE",
    "COMPILE_SLOW",
    "SERVER_DROP",
    "SERVER_GARBLE",
]

#: Seam names.  Production code consults seams by these constants; plans
#: address them by the same strings.
SHARD_KILL = "shard.worker_kill"
STORE_TORN = "store.torn_write"
NATIVE_BUILD = "native.build"
BACKEND_RESOLVE = "backend.resolve"
COMPILE_SLOW = "compile.slow"
SERVER_DROP = "server.drop_connection"
SERVER_GARBLE = "server.garble_response"

SEAMS = (
    SHARD_KILL,
    STORE_TORN,
    NATIVE_BUILD,
    BACKEND_RESOLVE,
    COMPILE_SLOW,
    SERVER_DROP,
    SERVER_GARBLE,
)


class InjectedFault(RuntimeError):
    """Raised at a seam when the armed plan decides the fault fires.

    Deliberately a plain ``RuntimeError`` subclass: resilience code must
    survive it through the same paths that handle organic failures, not
    through an injected-fault special case.
    """

    def __init__(self, seam: str, detail: str = ""):
        self.seam = seam
        msg = f"injected fault at seam {seam!r}"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)


_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _u01(seed: int, seam: str, occurrence: int) -> float:
    """Uniform [0, 1) draw keyed on (seed, seam, occurrence) only."""
    x = (seed & _MASK64) ^ (zlib.crc32(seam.encode()) << 32) ^ occurrence
    return _splitmix64(x) / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """When a single seam fires.

    Exactly one of the three triggers is consulted, in priority order:

    ``keys``
        fire whenever the caller-supplied key is in the set (e.g. a
        shard kill keyed by ``(shard_index, attempt)``);
    ``at``
        fire at these 0-based occurrence indices of the seam;
    ``rate``
        fire at this probability per consult, drawn from the plan seed.

    ``limit`` caps total fires of the spec regardless of trigger, and
    ``delay_s`` is the stall duration for latency seams consumed via
    :func:`sleep_if`.
    """

    seam: str
    at: Tuple[int, ...] = ()
    keys: FrozenSet[tuple] = frozenset()
    rate: float = 0.0
    delay_s: float = 0.0
    limit: Optional[int] = None


class FaultPlan:
    """A seeded set of fault specs plus per-seam consult/fire counters."""

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0):
        self.seed = int(seed)
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.seam in self._specs:
                raise ValueError(f"duplicate spec for seam {spec.seam!r}")
            self._specs[spec.seam] = spec
        self._lock = threading.Lock()
        self._consults: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    def spec(self, seam: str) -> Optional[FaultSpec]:
        return self._specs.get(seam)

    def fires(self, seam: str, key: Optional[tuple] = None) -> bool:
        """Count one consult of *seam* and decide whether it faults."""
        with self._lock:
            n = self._consults.get(seam, 0)
            self._consults[seam] = n + 1
            spec = self._specs.get(seam)
            if spec is None:
                return False
            fired = self._fired.get(seam, 0)
            if spec.limit is not None and fired >= spec.limit:
                return False
            if spec.keys:
                hit = key in spec.keys
            elif spec.at:
                hit = n in spec.at
            elif spec.rate > 0.0:
                hit = _u01(self.seed, seam, n) < spec.rate
            else:
                hit = False
            if hit:
                self._fired[seam] = fired + 1
            return hit

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-seam ``{"consulted": n, "fired": k}`` counters."""
        with self._lock:
            out = {}
            for seam in sorted(set(self._consults) | set(self._specs)):
                out[seam] = {
                    "consulted": self._consults.get(seam, 0),
                    "fired": self._fired.get(seam, 0),
                }
            return out

    def fired(self, seam: str) -> int:
        with self._lock:
            return self._fired.get(seam, 0)

    def arm(self) -> "_Armed":
        """Install this plan as the process-global adversary (context mgr)."""
        return _Armed(self)


_armed: Optional[FaultPlan] = None
_arm_lock = threading.Lock()


class _Armed:
    def __init__(self, plan: FaultPlan):
        self._plan = plan

    def __enter__(self) -> FaultPlan:
        global _armed
        with _arm_lock:
            if _armed is not None:
                raise RuntimeError("a FaultPlan is already armed")
            _armed = self._plan
        return self._plan

    def __exit__(self, *exc) -> None:
        global _armed
        with _arm_lock:
            _armed = None


def active() -> Optional[FaultPlan]:
    """The armed plan, or None.  Seam helpers below are the usual API."""
    return _armed


def fires(seam: str, key: Optional[tuple] = None) -> bool:
    """True when the armed plan fires *seam* at this consult."""
    plan = _armed
    if plan is None:
        return False
    return plan.fires(seam, key)


def check(seam: str, key: Optional[tuple] = None, detail: str = "") -> None:
    """Raise :class:`InjectedFault` when the armed plan fires *seam*."""
    plan = _armed
    if plan is not None and plan.fires(seam, key):
        raise InjectedFault(seam, detail)


def sleep_if(seam: str) -> None:
    """Stall for the spec's ``delay_s`` when the armed plan fires *seam*."""
    plan = _armed
    if plan is not None and plan.fires(seam):
        spec = plan.spec(seam)
        if spec is not None and spec.delay_s > 0.0:
            time.sleep(spec.delay_s)


def canonical_plan(seed: int = 2003) -> FaultPlan:
    """The canonical chaos schedule used by the suite and the benchmark.

    One plan covering every failure domain: worker murder on the first
    attempt of shard 1, torn store writes under the first two compiles
    that publish, mid-run backend faults on both word-space tiers
    (driving the circuit-breaker demotion ladder), sporadic slow
    compiles, and dropped/garbled server responses early in the
    connection's life.
    """
    return FaultPlan(
        [
            FaultSpec(SHARD_KILL, keys=frozenset({(1, 0)})),
            FaultSpec(STORE_TORN, at=(0, 3)),
            FaultSpec(BACKEND_RESOLVE,
                      keys=frozenset({("compiled",), ("packed",)}), limit=2),
            FaultSpec(COMPILE_SLOW, rate=0.3, delay_s=0.01),
            FaultSpec(SERVER_DROP, at=(2, 11)),
            FaultSpec(SERVER_GARBLE, at=(5, 17)),
        ],
        seed=seed,
    )
