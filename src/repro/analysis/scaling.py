"""Scaling study: how the protocols behave as the network grows.

The paper evaluates a single size (512 nodes).  This extension sweeps the
network size and records how transmissions, receptions, energy and delay
scale — verifying that the measured curves track the ideal model's
asymptotics (Tx ~ N / M_opt, delay ~ diameter) rather than degrading.

Shapes keep the paper's 2:1 aspect ratio for the 2D meshes and stay cubic
for 3D-6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.base import BroadcastProtocol
from ..core.ideal import ideal_case
from ..core.registry import protocol_for
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..sim.metrics import compute_metrics
from ..topology.builder import make_topology
from .sweep import effective_workers

#: Default size ladder (node counts); each 2D entry is a 2k x k mesh.
DEFAULT_SIZES_2D = (128, 288, 512, 800, 1152)
DEFAULT_SIZES_3D = (64, 216, 512, 1000)

#: Large-grid ladders exercising the stencil fast path (10^4 .. 10^6
#: nodes).  2D shapes are 2k x k; 3D are k^3 at comparable node counts.
LARGE_SIZES_2D = (10_000, 50_000, 100_000, 500_000, 1_000_000)
LARGE_SIZES_3D = (10_648, 50_653, 103_823, 493_039, 1_000_000)

#: Named ladders for the CLI's ``--ladder`` option.
LADDERS_2D = {"paper": DEFAULT_SIZES_2D, "large": LARGE_SIZES_2D}
LADDERS_3D = {"paper": DEFAULT_SIZES_3D, "large": LARGE_SIZES_3D}


def sizes_for(label: str, ladder: str = "paper") -> tuple:
    """The named size *ladder* for topology *label*."""
    table = LADDERS_3D if label == "3D-6" else LADDERS_2D
    try:
        return table[ladder]
    except KeyError:
        raise ValueError(
            f"unknown ladder {ladder!r}; choose from {sorted(table)}")


def icbrt(num: int) -> int:
    """Integer cube root rounding to the nearest cube.

    ``round(num ** (1/3))`` misrounds on exact cubes whose float cube root
    lands just below .5 (e.g. ``216 ** (1/3) == 5.999...`` → 6 only by
    luck of the rounding, ``10 ** 21`` style magnitudes drift further), so
    pick the integer k minimising ``|k^3 - num|`` exactly.
    """
    if num < 0:
        raise ValueError("num must be >= 0")
    k = round(num ** (1 / 3))
    return min((abs(c ** 3 - num), c) for c in (k - 1, k, k + 1)
               if c >= 0)[1]


@dataclass(frozen=True)
class ScalingPoint:
    """Measured broadcast cost at one network size."""

    topology: str
    num_nodes: int
    shape: tuple
    tx: int
    rx: int
    energy_j: float
    delay_slots: int
    ideal_tx: int
    ideal_delay: int
    reachability: float

    @property
    def tx_overhead(self) -> float:
        """Measured transmissions relative to the ideal model."""
        return self.tx / self.ideal_tx

    def as_row(self) -> dict:
        return {
            "topology": self.topology,
            "nodes": self.num_nodes,
            "shape": "x".join(str(s) for s in self.shape),
            "tx": self.tx,
            "ideal_tx": self.ideal_tx,
            "tx/ideal": round(self.tx_overhead, 3),
            "delay": self.delay_slots,
            "ideal_delay": self.ideal_delay,
            "energy_J": self.energy_j,
            "reach": self.reachability,
        }


def shape_for(label: str, num_nodes: int) -> tuple:
    """A paper-proportioned shape with (approximately) *num_nodes* nodes:
    2k x k for the 2D meshes, k^3 for 3D-6."""
    if label == "3D-6":
        k = icbrt(num_nodes)
        return (k, k, k)
    k = round((num_nodes / 2) ** 0.5)
    return (2 * k, k)


def central_source(shape: tuple) -> tuple:
    return tuple(max(1, s // 2) for s in shape)


def scaling_curve(
    label: str,
    sizes: Optional[Sequence[int]] = None,
    protocol: Optional[BroadcastProtocol] = None,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
    workers: Optional[int] = None,
) -> List[ScalingPoint]:
    """Broadcast cost vs network size for topology *label*.

    *workers* >= 2 compiles the sizes in parallel processes; each size is
    independent and the result order always matches *sizes*, so the curve
    is identical to the serial one.  On single-CPU hosts the request
    degrades to serial (see
    :func:`~repro.analysis.sweep.effective_workers`).
    """
    if sizes is None:
        sizes = DEFAULT_SIZES_3D if label == "3D-6" else DEFAULT_SIZES_2D
    jobs = [(label, target, protocol, model, packet_bits)
            for target in sizes]
    workers = effective_workers(workers)
    if workers > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_scaling_point, jobs))
    return [_scaling_point(job) for job in jobs]


def _scaling_point(job) -> ScalingPoint:
    """Measure one (topology label, target size) point.

    Module-level so parallel ``scaling_curve`` can pickle it.
    """
    label, target, protocol, model, packet_bits = job
    shape = shape_for(label, target)
    topo = make_topology(label, shape=shape)
    proto = protocol if protocol is not None else protocol_for(label)
    src = central_source(shape)
    compiled = proto.compile(topo, src)
    m = compute_metrics(compiled.trace, topo, model, packet_bits)
    ideal = ideal_case(topo, model, packet_bits)
    return ScalingPoint(
        topology=label,
        num_nodes=topo.num_nodes,
        shape=shape,
        tx=m.tx,
        rx=m.rx,
        energy_j=m.energy_j,
        delay_slots=m.delay_slots,
        ideal_tx=ideal.tx,
        ideal_delay=topo.eccentricity(src),
        reachability=m.reachability,
    )
