"""Source-position sensitivity (a direct Section 4 claim).

The paper: "The best case and worst case performances of 2D mesh with 3
neighbors (or 2D mesh with 8 neighbors) are quite close to each other,
because 2D mesh with 3 neighbors (or 2D mesh with 8 neighbors) is not
sensitive to the source node's location."

This module turns that into measurable statistics over a source sweep:
relative spread ((max-min)/mean) and coefficient of variation for every
paper metric, so the claim can be checked per topology rather than read
off two hand-picked rows.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .sweep import SweepResult


@dataclass(frozen=True)
class SensitivityReport:
    """Spread statistics of one metric over a source sweep."""

    topology: str
    metric: str
    minimum: float
    maximum: float
    mean: float
    relative_spread: float        # (max - min) / mean
    coefficient_of_variation: float

    def as_row(self) -> dict:
        return {
            "topology": self.topology,
            "metric": self.metric,
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.mean, 2),
            "spread_%": round(100 * self.relative_spread, 1),
            "cv_%": round(100 * self.coefficient_of_variation, 1),
        }


_METRIC_GETTERS = {
    "tx": lambda m: m.tx,
    "rx": lambda m: m.rx,
    "energy_J": lambda m: m.energy_j,
    "delay": lambda m: m.delay_slots,
}


def sensitivity(sweep: SweepResult, metric: str) -> SensitivityReport:
    """Spread statistics of *metric* ("tx" | "rx" | "energy_J" | "delay")
    over the sweep's sources."""
    try:
        getter = _METRIC_GETTERS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of "
            f"{sorted(_METRIC_GETTERS)}") from None
    values = np.asarray([getter(m) for m in sweep.metrics], dtype=float)
    if len(values) == 0:
        raise ValueError("empty sweep")
    mean = float(values.mean())
    return SensitivityReport(
        topology=sweep.topology,
        metric=metric,
        minimum=float(values.min()),
        maximum=float(values.max()),
        mean=mean,
        relative_spread=float((values.max() - values.min()) / mean)
        if mean else 0.0,
        coefficient_of_variation=float(values.std() / mean)
        if mean else 0.0,
    )


def sensitivity_table(sweeps: Dict[str, SweepResult],
                      metrics: tuple = ("tx", "energy_J", "delay")
                      ) -> List[dict]:
    """Rows of spread statistics for every (topology, metric) pair."""
    rows = []
    for label in sorted(sweeps):
        for metric in metrics:
            rows.append(sensitivity(sweeps[label], metric).as_row())
    return rows


def sensitivity_sweeps(stride: int = 1,
                       workers: "int | None" = None,
                       cache=None,
                       symmetry: "bool | None" = None
                       ) -> Dict[str, SweepResult]:
    """Source sweeps of all four paper topologies, ready for
    :func:`sensitivity_table`.

    Thin wrapper over :meth:`repro.analysis.compare.SweepCache.compute`
    so sensitivity studies get the same parallel-sweep (*workers*),
    schedule-cache (*cache*) and symmetry-reduction (*symmetry*)
    machinery as the paper tables.
    """
    from .compare import SweepCache
    return SweepCache.compute(
        stride=stride, workers=workers, cache=cache,
        symmetry=symmetry).sweeps


# ---------------------------------------------------------------------------
# Robustness sensitivity: does loss resilience depend on the source?
# ---------------------------------------------------------------------------

def _loss_reach_chunk(job) -> List[float]:
    """Worker-process entry point: mean lossy reachability per source."""
    topology, protocol, chunk, loss_rate, trials, seed = job
    from ..radio.impairments import BernoulliBatchLoss, trial_seeds
    from ..sim.engine import run_reactive_batch
    out = []
    for src in chunk:
        plan = protocol.relay_plan(topology, src)
        seeds = trial_seeds(seed, loss_rate, trials)
        s = run_reactive_batch(
            topology, topology.index(src), plan.relay_mask,
            extra_delay=plan.extra_delay,
            repeat_offsets=plan.repeat_offsets,
            loss=BernoulliBatchLoss(loss_rate, seeds), summary=True)
        out.append(float(s.reachability.mean()))
    return out


def loss_sensitivity(topology,
                     loss_rate: float = 0.1,
                     sources: Optional[Sequence] = None,
                     trials: int = 8,
                     protocol=None,
                     seed: int = 0,
                     workers: Optional[int] = None,
                     stride: int = 1) -> SensitivityReport:
    """Spread of mean lossy reachability over source positions.

    Extends the paper's source-sensitivity claim to the impaired
    channel: every source's reactive wave is Monte-Carlo'd through the
    batched engine (*trials* Bernoulli channels per source, identical
    seeds across sources so the comparison is paired), and the report
    summarises how much the mean reachability moves with the source.
    """
    from ..core.registry import protocol_for
    from .sweep import strided_sources
    if protocol is None:
        protocol = protocol_for(topology)
    if sources is None:
        sources = strided_sources(topology, stride)
    sources = list(sources)
    if not sources:
        raise ValueError("empty source set")
    if workers is not None and workers > 1 and len(sources) > 1:
        size = max(1, -(-len(sources) // (workers * 4)))
        chunks = [sources[i:i + size]
                  for i in range(0, len(sources), size)]
        jobs = [(topology, protocol, chunk, loss_rate, trials, seed)
                for chunk in chunks]
        values: List[float] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk_vals in pool.map(_loss_reach_chunk, jobs):
                values.extend(chunk_vals)
    else:
        values = _loss_reach_chunk(
            (topology, protocol, sources, loss_rate, trials, seed))
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    return SensitivityReport(
        topology=topology.name,
        metric=f"reach@p={loss_rate}",
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=mean,
        relative_spread=float((arr.max() - arr.min()) / mean)
        if mean else 0.0,
        coefficient_of_variation=float(arr.std() / mean) if mean else 0.0,
    )
