"""Source-position sensitivity (a direct Section 4 claim).

The paper: "The best case and worst case performances of 2D mesh with 3
neighbors (or 2D mesh with 8 neighbors) are quite close to each other,
because 2D mesh with 3 neighbors (or 2D mesh with 8 neighbors) is not
sensitive to the source node's location."

This module turns that into measurable statistics over a source sweep:
relative spread ((max-min)/mean) and coefficient of variation for every
paper metric, so the claim can be checked per topology rather than read
off two hand-picked rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .sweep import SweepResult


@dataclass(frozen=True)
class SensitivityReport:
    """Spread statistics of one metric over a source sweep."""

    topology: str
    metric: str
    minimum: float
    maximum: float
    mean: float
    relative_spread: float        # (max - min) / mean
    coefficient_of_variation: float

    def as_row(self) -> dict:
        return {
            "topology": self.topology,
            "metric": self.metric,
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.mean, 2),
            "spread_%": round(100 * self.relative_spread, 1),
            "cv_%": round(100 * self.coefficient_of_variation, 1),
        }


_METRIC_GETTERS = {
    "tx": lambda m: m.tx,
    "rx": lambda m: m.rx,
    "energy_J": lambda m: m.energy_j,
    "delay": lambda m: m.delay_slots,
}


def sensitivity(sweep: SweepResult, metric: str) -> SensitivityReport:
    """Spread statistics of *metric* ("tx" | "rx" | "energy_J" | "delay")
    over the sweep's sources."""
    try:
        getter = _METRIC_GETTERS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of "
            f"{sorted(_METRIC_GETTERS)}") from None
    values = np.asarray([getter(m) for m in sweep.metrics], dtype=float)
    if len(values) == 0:
        raise ValueError("empty sweep")
    mean = float(values.mean())
    return SensitivityReport(
        topology=sweep.topology,
        metric=metric,
        minimum=float(values.min()),
        maximum=float(values.max()),
        mean=mean,
        relative_spread=float((values.max() - values.min()) / mean)
        if mean else 0.0,
        coefficient_of_variation=float(values.std() / mean)
        if mean else 0.0,
    )


def sensitivity_table(sweeps: Dict[str, SweepResult],
                      metrics: tuple = ("tx", "energy_J", "delay")
                      ) -> List[dict]:
    """Rows of spread statistics for every (topology, metric) pair."""
    rows = []
    for label in sorted(sweeps):
        for metric in metrics:
            rows.append(sensitivity(sweeps[label], metric).as_row())
    return rows


def sensitivity_sweeps(stride: int = 1,
                       workers: "int | None" = None,
                       cache=None) -> Dict[str, SweepResult]:
    """Source sweeps of all four paper topologies, ready for
    :func:`sensitivity_table`.

    Thin wrapper over :meth:`repro.analysis.compare.SweepCache.compute`
    so sensitivity studies get the same parallel-sweep (*workers*) and
    schedule-cache (*cache*) machinery as the paper tables.
    """
    from .compare import SweepCache
    return SweepCache.compute(
        stride=stride, workers=workers, cache=cache).sweeps
