"""Source-position sweeps (the best/worst cases of Tables 3-5).

The paper: "In our broadcasting protocols, different source has different
total number of transmissions, receptions, power consumption and delay
time.  If the source is in the center of the network, it performs better.
If it is in the corner ... more power and longer delay."  The paper does
not state which sources realise its best/worst rows, so we sweep — every
source position by default — and take the extremes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.base import BroadcastProtocol
from ..core.registry import protocol_for
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..sim.metrics import BroadcastMetrics, compute_metrics
from ..topology.base import Topology


@dataclass
class SweepResult:
    """Metrics of one protocol over a set of source positions."""

    topology: str
    metrics: List[BroadcastMetrics] = field(default_factory=list)

    # -- extremes ---------------------------------------------------------

    def best_by_energy(self) -> BroadcastMetrics:
        """The paper's "best case": the minimum-power source."""
        return min(self.metrics, key=lambda m: (m.energy_j, m.source))

    def worst_by_energy(self) -> BroadcastMetrics:
        """The paper's "worst case": the maximum-power source."""
        return max(self.metrics, key=lambda m: (m.energy_j, m.source))

    def max_delay(self) -> int:
        """The paper's Table 5 "maximum delay time" over sources."""
        return max(m.delay_slots for m in self.metrics)

    def min_delay(self) -> int:
        """Minimum broadcast delay over sources."""
        return min(m.delay_slots for m in self.metrics)

    # -- aggregates -------------------------------------------------------

    def all_reached(self) -> bool:
        """True iff every sweep member achieved 100 % reachability."""
        return all(m.reached_all for m in self.metrics)

    def mean_tx(self) -> float:
        return float(np.mean([m.tx for m in self.metrics]))

    def mean_rx(self) -> float:
        return float(np.mean([m.rx for m in self.metrics]))

    def mean_energy(self) -> float:
        return float(np.mean([m.energy_j for m in self.metrics]))

    def __len__(self) -> int:
        return len(self.metrics)


def sweep_sources(
    topology: Topology,
    protocol: Optional[BroadcastProtocol] = None,
    sources: Optional[Sequence] = None,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SweepResult:
    """Compile and simulate a broadcast from each source position.

    Parameters
    ----------
    protocol:
        Defaults to the paper protocol matching the topology.
    sources:
        1-based source coordinates; defaults to *every* node.
    progress:
        Optional ``(done, total)`` callback for long sweeps.
    """
    if protocol is None:
        protocol = protocol_for(topology)
    if sources is None:
        sources = [topology.coord(i) for i in range(topology.num_nodes)]
    result = SweepResult(topology=topology.name)
    total = len(sources)
    for done, src in enumerate(sources, start=1):
        compiled = protocol.compile(topology, src)
        result.metrics.append(
            compute_metrics(compiled.trace, topology, model, packet_bits))
        if progress is not None:
            progress(done, total)
    return result


def strided_sources(topology: Topology, stride: int) -> List:
    """Every ``stride``-th node coordinate — a cheap sweep grid that still
    includes the four extreme corners (the delay/power extremes live
    there)."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    coords = [topology.coord(i)
              for i in range(0, topology.num_nodes, stride)]
    first = topology.coord(0)
    last = topology.coord(topology.num_nodes - 1)
    for corner in (first, last):
        if corner not in coords:
            coords.append(corner)
    return coords
