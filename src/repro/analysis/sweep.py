"""Source-position sweeps (the best/worst cases of Tables 3-5).

The paper: "In our broadcasting protocols, different source has different
total number of transmissions, receptions, power consumption and delay
time.  If the source is in the center of the network, it performs better.
If it is in the corner ... more power and longer delay."  The paper does
not state which sources realise its best/worst rows, so we sweep — every
source position by default — and take the extremes.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.base import BroadcastProtocol
from ..core.cache import ScheduleCache
from ..core.registry import protocol_for
from ..core.symmetry import compile_class, group_sources
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..sim.metrics import BroadcastMetrics, compute_metrics
from ..topology.base import Topology


def available_cpus() -> int:
    """CPUs actually available to this process.

    ``os.sched_getaffinity`` respects cgroup/taskset CPU masks (the
    common case on CI runners and containers, where ``os.cpu_count``
    reports the host's cores even when the process is pinned to one);
    fall back to ``os.cpu_count`` where affinity is unsupported.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def effective_workers(workers: Optional[int],
                      tasks: Optional[int] = None) -> int:
    """Worker count actually used for a requested *workers* value.

    Single-CPU hosts degrade to serial: process fan-out only adds fork +
    pickle overhead there (BENCH_sweep.json measured the parallel path
    *losing* to serial, 0.53 s vs 0.47 s, on a 1-CPU runner).  Benchmarks
    record this effective count next to the requested one and next to the
    raw ``os.cpu_count`` (which, unlike :func:`available_cpus`, ignores
    the affinity mask the process actually runs under).

    *tasks*, when given, caps the answer at the number of units there
    are to distribute — trial-sharded runs pass the batch size so a
    128-worker request over 32 trials does not fork 96 idle processes.
    """
    if workers is None or workers <= 1:
        return 1
    if available_cpus() <= 1:
        return 1
    workers = int(workers)
    if tasks is not None:
        workers = min(workers, max(1, int(tasks)))
    return workers


@dataclass
class SweepResult:
    """Metrics of one protocol over a set of source positions."""

    topology: str
    metrics: List[BroadcastMetrics] = field(default_factory=list)

    # -- extremes ---------------------------------------------------------

    def best_by_energy(self) -> BroadcastMetrics:
        """The paper's "best case": the minimum-power source."""
        return min(self.metrics, key=lambda m: (m.energy_j, m.source))

    def worst_by_energy(self) -> BroadcastMetrics:
        """The paper's "worst case": the maximum-power source."""
        return max(self.metrics, key=lambda m: (m.energy_j, m.source))

    def max_delay(self) -> int:
        """The paper's Table 5 "maximum delay time" over sources."""
        return max(m.delay_slots for m in self.metrics)

    def min_delay(self) -> int:
        """Minimum broadcast delay over sources."""
        return min(m.delay_slots for m in self.metrics)

    # -- aggregates -------------------------------------------------------

    def all_reached(self) -> bool:
        """True iff every sweep member achieved 100 % reachability."""
        return all(m.reached_all for m in self.metrics)

    def mean_tx(self) -> float:
        return float(np.mean([m.tx for m in self.metrics]))

    def mean_rx(self) -> float:
        return float(np.mean([m.rx for m in self.metrics]))

    def mean_energy(self) -> float:
        return float(np.mean([m.energy_j for m in self.metrics]))

    def __len__(self) -> int:
        return len(self.metrics)


def sweep_sources(
    topology: Topology,
    protocol: Optional[BroadcastProtocol] = None,
    sources: Optional[Sequence] = None,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
    progress: Optional[Callable[[int, int], None]] = None,
    workers: Optional[int] = None,
    cache: Optional[ScheduleCache] = None,
    symmetry: Optional[bool] = None,
) -> SweepResult:
    """Compile and simulate a broadcast from each source position.

    Parameters
    ----------
    protocol:
        Defaults to the paper protocol matching the topology.
    sources:
        1-based source coordinates; defaults to *every* node.
    progress:
        Optional ``(done, total)`` callback for long sweeps.  In parallel
        mode it fires once per completed chunk (with cumulative counts)
        rather than per source; in symmetry mode once per completed
        equivalence class.
    workers:
        ``None`` or ``<= 1`` runs serially in-process.  ``>= 2`` fans the
        sources out over that many worker processes in contiguous chunks —
        unless the host has a single CPU, in which case the request
        degrades to serial (see :func:`effective_workers`).
        Compilation is deterministic per source, and results are
        reassembled in submission order, so the metrics list — and every
        statistic derived from it — is bit-for-bit identical to the serial
        sweep regardless of worker count or scheduling.
    cache:
        Optional :class:`~repro.core.cache.ScheduleCache`.  Serial sweeps
        use both tiers; parallel workers share only the *disk* tier (the
        in-memory tier is per-process), so pass a cache with ``path=`` for
        cross-run reuse.  The parent's in-memory tier is not populated by
        parallel workers.
    symmetry:
        ``None`` (default) auto-enables the symmetry-reduced fast path
        (:mod:`repro.core.symmetry`) whenever the protocol can group the
        sources into translation-equivalence classes; ``True`` forces it
        (still falling back per-source for non-groupable sources and to
        the direct sweep when nothing groups — irregular topologies,
        baseline protocols); ``False`` compiles every source directly.
        Both paths produce identical metrics in identical order — the
        fast path compiles one representative per class and derives the
        members with the batched engine, which is trace-for-trace equal
        to per-source compilation.
    """
    if protocol is None:
        protocol = protocol_for(topology)
    if sources is None:
        sources = [topology.coord(i) for i in range(topology.num_nodes)]
    result = SweepResult(topology=topology.name)
    total = len(sources)
    workers = effective_workers(workers)
    if symmetry is not False:
        groups, direct_pos = group_sources(topology, protocol, sources)
        if groups:
            result.metrics.extend(_sweep_symmetry(
                topology, protocol, list(sources), groups, direct_pos,
                model, packet_bits, progress, workers, cache))
            return result
    if workers > 1 and total > 1:
        chunks = _chunk(list(sources), workers)
        cache_path = None if cache is None else cache.path
        jobs = [(topology, protocol, chunk, model, packet_bits,
                 None if cache_path is None else str(cache_path))
                for chunk in chunks]
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # executor.map preserves job order -> deterministic output.
            for chunk, chunk_metrics in zip(
                    chunks, pool.map(_sweep_chunk, jobs)):
                result.metrics.extend(chunk_metrics)
                done += len(chunk)
                if progress is not None:
                    progress(done, total)
        return result
    for done, src in enumerate(sources, start=1):
        result.metrics.append(_source_metrics(
            topology, protocol, src, model, packet_bits, cache))
        if progress is not None:
            progress(done, total)
    return result


def _source_metrics(topology, protocol, src, model, packet_bits, cache):
    """Metrics of one source: warm store counts when available (no
    replay, no fixpoint — the sharded store persists them with each
    entry), compile otherwise."""
    if cache is not None:
        metrics = cache.cached_metrics(
            protocol, topology, src, model=model, packet_bits=packet_bits)
        if metrics is not None:
            return metrics
    compiled = protocol.compile(topology, src, cache=cache)
    return compute_metrics(compiled.trace, topology, model, packet_bits)


def _sweep_symmetry(
    topology: Topology,
    protocol: BroadcastProtocol,
    sources: List,
    groups,
    direct_pos: List[int],
    model: FirstOrderRadioModel,
    packet_bits: int,
    progress: Optional[Callable[[int, int], None]],
    workers: int,
    cache: Optional[ScheduleCache],
) -> List[BroadcastMetrics]:
    """Symmetry-reduced sweep body: one compile per equivalence class.

    Parallel mode distributes whole classes over the workers (a class is
    the batching unit — splitting one would forfeit its shared fixpoint),
    chunked contiguously by member count so the per-chunk work is
    balanced.  Results are scattered back by source position, so the
    returned metrics list is ordered exactly like the direct sweep's.
    """
    total = len(sources)
    out: List[Optional[BroadcastMetrics]] = [None] * total
    done = 0
    class_items = [(key, positions, [sources[p] for p in positions])
                   for key, positions in groups.items()]
    if workers > 1 and len(class_items) > 1:
        chunks = _chunk_classes(class_items, workers)
        cache_path = None if cache is None else cache.path
        jobs = [(topology, protocol, chunk, model, packet_bits,
                 None if cache_path is None else str(cache_path))
                for chunk in chunks]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk, placed in zip(chunks, pool.map(
                    _symmetry_chunk, jobs)):
                for pos, metrics in placed:
                    out[pos] = metrics
                done += sum(len(positions) for _, positions, _ in chunk)
                if progress is not None:
                    progress(done, total)
    else:
        for class_key, positions, coords in class_items:
            for pos, member in zip(positions, compile_class(
                    topology, protocol, class_key, coords, cache=cache)):
                out[pos] = member.metrics(topology, model, packet_bits)
            done += len(positions)
            if progress is not None:
                progress(done, total)
    for pos in direct_pos:
        compiled = protocol.compile(topology, sources[pos], cache=cache)
        out[pos] = compute_metrics(
            compiled.trace, topology, model, packet_bits)
        done += 1
        if progress is not None:
            progress(done, total)
    return out


def _chunk_classes(items: List, workers: int) -> List[List]:
    """Contiguous class chunks balanced by total member count."""
    total = sum(len(positions) for _, positions, _ in items)
    target = max(1, -(-total // (workers * 4)))
    chunks: List[List] = []
    current: List = []
    weight = 0
    for item in items:
        current.append(item)
        weight += len(item[1])
        if weight >= target:
            chunks.append(current)
            current, weight = [], 0
    if current:
        chunks.append(current)
    return chunks


def _symmetry_chunk(job) -> List:
    """Worker-process entry point: compile one chunk of source classes.

    Module-level (not a closure) so it pickles under every start method.
    Returns ``(position, metrics)`` pairs for the parent to scatter.
    """
    topology, protocol, items, model, packet_bits, cache_path = job
    cache = None if cache_path is None else ScheduleCache(cache_path)
    out = []
    for class_key, positions, coords in items:
        for pos, member in zip(positions, compile_class(
                topology, protocol, class_key, coords, cache=cache)):
            out.append((pos, member.metrics(topology, model, packet_bits)))
    return out


def _chunk(items: List, workers: int) -> List[List]:
    """Contiguous chunks, ~4 per worker, preserving order."""
    size = max(1, -(-len(items) // (workers * 4)))
    return [items[i:i + size] for i in range(0, len(items), size)]


def _sweep_chunk(job) -> List[BroadcastMetrics]:
    """Worker-process entry point: compile one chunk of sources.

    Module-level (not a closure) so it pickles under every start method.
    """
    topology, protocol, chunk, model, packet_bits, cache_path = job
    cache = None if cache_path is None else ScheduleCache(cache_path)
    out = []
    for src in chunk:
        out.append(_source_metrics(
            topology, protocol, src, model, packet_bits, cache))
    return out


def corner_sources(topology: Topology) -> List:
    """All extreme-corner coordinates of the grid, in lexicographic order.

    Four corners for the 2D meshes, eight for 3D-6.  The delay/power
    extremes of Tables 4-5 live at corners, so subsampled sweeps must
    include every one of them — not only the first/last flattened node.
    """
    last = topology.coord(topology.num_nodes - 1)
    corners = []
    for coord in itertools.product(*((1, hi) for hi in last)):
        # Degenerate 1-wide dimensions make product() repeat coordinates.
        if topology.contains(coord) and coord not in corners:
            corners.append(coord)
    return corners


def strided_sources(topology: Topology, stride: int) -> List:
    """Every ``stride``-th node coordinate — a cheap sweep grid that still
    includes *all* extreme corners (the delay/power extremes live there).

    The previous implementation appended only the first and last flattened
    node, silently omitting the two (2D) or six (3D) remaining corners.
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    coords = [topology.coord(i)
              for i in range(0, topology.num_nodes, stride)]
    seen = set(coords)
    for corner in corner_sources(topology):
        if corner not in seen:
            coords.append(corner)
            seen.add(corner)
    return coords
