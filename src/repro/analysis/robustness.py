"""Robustness analysis: how compiled schedules degrade under faults.

The paper compiles schedules for a perfect channel.  This module measures
(and mitigates) what happens when reality intrudes:

* **packet loss** — every decode independently erased with probability p
  (or whole-slot blackout bursts);
* **node failures** — k nodes die after deployment; the precompiled
  schedule is replayed around the corpses, or the broadcast is recompiled
  with knowledge of the failures (the engine routes around dead nodes via
  the completion/repair phases);
* **hardening** — repeating every relay transmission r extra times buys
  loss resilience at a quantifiable energy price.

These are extensions beyond the paper (clearly labelled as such in
EXPERIMENTS.md), built on the same engine and audit machinery.

Monte-Carlo execution is **trial-batched** by default: all trials of one
sweep point advance together through
:func:`~repro.sim.engine.run_reactive_batch` /
:func:`~repro.sim.engine.replay_batch` in ``summary`` mode, with the
per-trial Bernoulli channels realised by the vectorised counter-based RNG
(:class:`~repro.radio.impairments.BernoulliBatchLoss`).  ``engine=
"serial"`` runs the same per-trial seeds through the one-trial engine and
produces *identical* points — that equivalence is asserted by the test
suite and by ``benchmarks/perf_robustness.py`` before it publishes
timings.  Sweep points fan out over processes via ``workers=`` exactly
like :func:`~repro.analysis.sweep.sweep_sources`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.base import BroadcastProtocol, RelayPlan
from ..core.cache import ScheduleCache
from ..core.compiler import compile_broadcast
from ..core.registry import protocol_for
from ..radio.impairments import (BernoulliBatchLoss, CounterBernoulliLoss,
                                 random_dead_mask, trial_seeds)
from ..sim.engine import (replay, replay_batch, run_reactive,
                          run_reactive_batch)
from ..topology.base import Topology

_ENGINES = ("batch", "serial")


@dataclass(frozen=True)
class RobustnessPoint:
    """One measurement of a degradation curve."""

    parameter: float
    trials: int
    mean_reachability: float
    min_reachability: float
    mean_tx: float

    def as_row(self) -> dict:
        return {
            "parameter": self.parameter,
            "trials": self.trials,
            "mean_reach": self.mean_reachability,
            "min_reach": self.min_reachability,
            "mean_tx": self.mean_tx,
        }


def harden_plan(plan: RelayPlan, repeats: int) -> RelayPlan:
    """Return a copy of *plan* where every relay transmits ``repeats``
    extra times — blind ARQ hardening.

    Repeats are spaced two slots apart (offsets 2, 4, ...): the relay
    wave advances one hop per slot, so ``+1`` repeats would collide with
    the neighbouring relays' first transmissions and *reduce* clean-
    channel reachability; even offsets stay phase-aligned with the wave.
    """
    if repeats < 0:
        raise ValueError("repeats must be >= 0")
    hardened = plan.copy()
    if repeats == 0:
        return hardened
    extra = tuple(range(2, 2 * repeats + 1, 2))
    offsets = dict(hardened.repeat_offsets)
    for v in np.nonzero(hardened.relay_mask)[0]:
        existing = offsets.get(int(v), ())
        merged = tuple(sorted(set(existing) | set(extra)))
        offsets[int(v)] = merged
    hardened.repeat_offsets = offsets
    return hardened


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of "
                         f"{_ENGINES}")


def _point(parameter: float, reaches: np.ndarray,
           txs: np.ndarray) -> RobustnessPoint:
    return RobustnessPoint(
        parameter=float(parameter), trials=len(reaches),
        mean_reachability=float(np.mean(reaches)),
        min_reachability=float(np.min(reaches)),
        mean_tx=float(np.mean(txs)))


def _chunk(items: List, workers: int) -> List[List]:
    """Contiguous chunks, ~2 per worker, preserving order."""
    size = max(1, -(-len(items) // (workers * 2)))
    return [items[i:i + size] for i in range(0, len(items), size)]


def _fan_out(points_fn, parameters: Sequence, workers: Optional[int],
             job_builder, worker_fn) -> List[RobustnessPoint]:
    """Run *points_fn* over *parameters*, optionally across processes.

    Results are reassembled in submission order, so the parallel curve is
    identical to the serial one regardless of worker count.
    """
    params = list(parameters)
    if workers is not None and workers > 1 and len(params) > 1:
        chunks = _chunk(params, workers)
        points: List[RobustnessPoint] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for chunk_points in pool.map(
                    worker_fn, [job_builder(chunk) for chunk in chunks]):
                points.extend(chunk_points)
        return points
    return [points_fn(p) for p in params]


# ---------------------------------------------------------------------------
# Loss degradation
# ---------------------------------------------------------------------------

def _loss_point(topology: Topology, src: int, plan: RelayPlan,
                p: float, trials: int, seed: int,
                engine: str) -> RobustnessPoint:
    """One loss-rate point: *trials* Bernoulli channels, batched or not.

    The per-trial seeds mix the loss rate into the stream
    (:func:`~repro.radio.impairments.trial_seeds`), so every point of the
    curve draws independent randomness.
    """
    seeds = trial_seeds(seed, p, trials)
    if engine == "batch":
        s = run_reactive_batch(
            topology, src, plan.relay_mask,
            extra_delay=plan.extra_delay,
            repeat_offsets=plan.repeat_offsets,
            loss=BernoulliBatchLoss(p, seeds), summary=True)
        return _point(p, s.reachability, s.num_tx)
    reaches = np.empty(trials)
    txs = np.empty(trials)
    for b in range(trials):
        trace = run_reactive(
            topology, src, plan.relay_mask,
            extra_delay=plan.extra_delay,
            repeat_offsets=plan.repeat_offsets,
            loss=CounterBernoulliLoss(p, int(seeds[b])))
        reaches[b] = trace.reachability
        txs[b] = trace.num_tx
    return _point(p, reaches, txs)


def _loss_chunk(job) -> List[RobustnessPoint]:
    """Worker-process entry point for parallel loss sweeps."""
    topology, src, plan, rates, trials, seed, engine = job
    return [_loss_point(topology, src, plan, p, trials, seed, engine)
            for p in rates]


def loss_degradation(
    topology: Topology,
    source,
    loss_rates: Sequence[float],
    trials: int = 5,
    protocol: Optional[BroadcastProtocol] = None,
    harden: int = 0,
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "batch",
) -> List[RobustnessPoint]:
    """Reachability of the (optionally hardened) protocol under Bernoulli
    loss, per loss rate.

    The wave is re-run reactively under each lossy channel (relays fire
    on their *actual* first reception), which is how a real deployment
    would behave; no recompilation knowledge of the losses is assumed.

    All trials of one loss rate run as one batch through
    :func:`~repro.sim.engine.run_reactive_batch` (``engine="batch"``,
    the default); ``engine="serial"`` runs the identical per-trial seeds
    through the one-trial engine and yields the same points.  ``workers``
    fans the loss rates out over processes, order-preserving.
    """
    _check_engine(engine)
    if protocol is None:
        protocol = protocol_for(topology)
    plan = harden_plan(protocol.relay_plan(topology, source), harden)
    src = topology.index(source)

    def job_builder(chunk):
        return (topology, src, plan, chunk, trials, seed, engine)

    return _fan_out(
        lambda p: _loss_point(topology, src, plan, p, trials, seed, engine),
        loss_rates, workers, job_builder, _loss_chunk)


# ---------------------------------------------------------------------------
# Failure degradation
# ---------------------------------------------------------------------------

def _failure_dead_masks(topology: Topology, k: int, trials: int,
                        seed: int, src: int) -> np.ndarray:
    """(trials, n) stack of per-trial failure masks for one sweep point,
    seeded with the failure count mixed in (decorrelated across points)."""
    seeds = trial_seeds(seed, float(k), trials)
    return np.stack([
        random_dead_mask(topology, k, seed=int(s), protect=[src])
        for s in seeds])


def _failure_point(topology: Topology, source, src: int,
                   baseline_schedule, plan: Optional[RelayPlan],
                   k: int, trials: int, seed: int, recompile: bool,
                   engine: str) -> RobustnessPoint:
    dead_masks = _failure_dead_masks(topology, k, trials, seed, src)
    live = ~dead_masks
    if recompile:
        # Per-trial compilation cannot batch (each trial compiles a
        # different schedule), but the invariant relay plan is computed
        # once by the caller rather than once per trial.
        reaches = np.empty(trials)
        txs = np.empty(trials)
        for b in range(trials):
            compiled = compile_broadcast(topology, src, plan,
                                         dead_mask=dead_masks[b])
            reached = (compiled.trace.first_rx >= 0) & live[b]
            reaches[b] = float(reached.sum()) / float(live[b].sum())
            txs[b] = compiled.trace.num_tx
        return _point(k, reaches, txs)
    if engine == "batch":
        s = replay_batch(topology, baseline_schedule, src,
                         dead_masks=dead_masks, summary=True)
        return _point(k, s.live_reachability(dead_masks), s.num_tx)
    reaches = np.empty(trials)
    txs = np.empty(trials)
    for b in range(trials):
        trace = replay(topology, baseline_schedule, src,
                       dead_mask=dead_masks[b])
        reached = (trace.first_rx >= 0) & live[b]
        reaches[b] = float(reached.sum()) / float(live[b].sum())
        txs[b] = trace.num_tx
    return _point(k, reaches, txs)


def _failure_chunk(job) -> List[RobustnessPoint]:
    """Worker-process entry point for parallel failure sweeps."""
    (topology, source, src, schedule, plan, counts, trials, seed,
     recompile, engine) = job
    return [_failure_point(topology, source, src, schedule, plan, k,
                           trials, seed, recompile, engine)
            for k in counts]


def failure_degradation(
    topology: Topology,
    source,
    failure_counts: Sequence[int],
    trials: int = 5,
    protocol: Optional[BroadcastProtocol] = None,
    recompile: bool = False,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[ScheduleCache] = None,
    engine: str = "batch",
) -> List[RobustnessPoint]:
    """Live-node reachability after k random node deaths.

    ``recompile=False`` replays the pristine precompiled schedule around
    the corpses (failures unknown to the protocol);  ``recompile=True``
    recompiles with the failures known, letting completion/repair route
    around them.  Reachability is measured over surviving nodes only.

    The static branch replays all trials of one failure count as a batch
    (:func:`~repro.sim.engine.replay_batch`); the recompile branch
    compiles per trial (each trial yields a different schedule) but the
    invariant relay plan is computed once.  ``workers`` fans the failure
    counts out over processes; *cache* is the schedule cache used for the
    baseline compilation.
    """
    _check_engine(engine)
    if protocol is None:
        protocol = protocol_for(topology)
    src = topology.index(source)
    if recompile:
        plan = protocol.relay_plan(topology, source)
        baseline_schedule = None
    else:
        plan = None
        baseline_schedule = protocol.compile(topology, source,
                                             cache=cache).schedule

    def job_builder(chunk):
        return (topology, source, src, baseline_schedule, plan, chunk,
                trials, seed, recompile, engine)

    return _fan_out(
        lambda k: _failure_point(topology, source, src, baseline_schedule,
                                 plan, k, trials, seed, recompile, engine),
        failure_counts, workers, job_builder, _failure_chunk)
