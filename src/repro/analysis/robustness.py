"""Robustness analysis: how compiled schedules degrade under faults.

The paper compiles schedules for a perfect channel.  This module measures
(and mitigates) what happens when reality intrudes:

* **packet loss** — every decode independently erased with probability p
  (or whole-slot blackout bursts);
* **node failures** — k nodes die after deployment; the precompiled
  schedule is replayed around the corpses, or the broadcast is recompiled
  with knowledge of the failures (the engine routes around dead nodes via
  the completion/repair phases);
* **hardening** — repeating every relay transmission r extra times buys
  loss resilience at a quantifiable energy price.

These are extensions beyond the paper (clearly labelled as such in
EXPERIMENTS.md), built on the same engine and audit machinery.

Monte-Carlo execution is **trial-batched** by default: all trials of one
sweep point advance together through
:func:`~repro.sim.engine.run_reactive_batch` /
:func:`~repro.sim.engine.replay_batch` in ``summary`` mode, with the
per-trial Bernoulli channels realised by the vectorised counter-based RNG
(:class:`~repro.radio.impairments.BernoulliBatchLoss`).  ``engine=
"serial"`` runs the same per-trial seeds through the one-trial engine and
produces *identical* points — that equivalence is asserted by the test
suite and by ``benchmarks/perf_robustness.py`` before it publishes
timings.  Sweep points fan out over processes via ``workers=`` exactly
like :func:`~repro.analysis.sweep.sweep_sources`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..core.base import BroadcastProtocol, RelayPlan
from ..core.cache import ScheduleCache
from ..core.compiler import compile_broadcast
from ..core.registry import protocol_for
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            PAPER_SPACING_M)
from ..radio.impairments import (BernoulliBatchLoss, CounterBernoulliLoss,
                                 random_dead_mask, trial_seeds)
from ..sim.engine import replay, run_reactive
from ..sim.recovery import RecoveryPolicy
from ..sim.shard import replay_batch_sharded, run_reactive_batch_sharded
from ..topology.base import Topology
from .sweep import effective_workers

#: ``batch`` / ``packed`` / ``compiled`` / ``auto`` select the
#: slot-resolve tier of the batched engine (see
#: :mod:`repro.sim.backend`); ``serial`` runs the identical per-trial
#: seeds through the one-trial engine.  All five produce identical
#: curves — the differential suite asserts it.
_ENGINES = ("batch", "packed", "compiled", "auto", "serial")


@dataclass(frozen=True)
class RobustnessPoint:
    """One measurement of a degradation curve.

    The dispersion fields (``std_reach`` and the 5th/50th reachability
    percentiles) were added for frontier comparisons; they default to
    zero so pre-existing positional constructions stay valid.
    """

    parameter: float
    trials: int
    mean_reachability: float
    min_reachability: float
    mean_tx: float
    std_reach: float = 0.0
    p5_reach: float = 0.0
    p50_reach: float = 0.0

    def as_row(self) -> dict:
        return {
            "parameter": self.parameter,
            "trials": self.trials,
            "mean_reach": self.mean_reachability,
            "min_reach": self.min_reachability,
            "mean_tx": self.mean_tx,
            "std_reach": self.std_reach,
            "p5_reach": self.p5_reach,
            "p50_reach": self.p50_reach,
        }


def harden_plan(plan: RelayPlan, repeats: int) -> RelayPlan:
    """Return a copy of *plan* where every relay transmits ``repeats``
    extra times — blind ARQ hardening.

    Repeats are spaced two slots apart (offsets 2, 4, ...): the relay
    wave advances one hop per slot, so ``+1`` repeats would collide with
    the neighbouring relays' first transmissions and *reduce* clean-
    channel reachability; even offsets stay phase-aligned with the wave.
    """
    if repeats < 0:
        raise ValueError("repeats must be >= 0")
    hardened = plan.copy()
    if repeats == 0:
        return hardened
    extra = tuple(range(2, 2 * repeats + 1, 2))
    offsets = dict(hardened.repeat_offsets)
    for v in np.nonzero(hardened.relay_mask)[0]:
        existing = offsets.get(int(v), ())
        merged = tuple(sorted(set(existing) | set(extra)))
        offsets[int(v)] = merged
    hardened.repeat_offsets = offsets
    return hardened


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of "
                         f"{_ENGINES}")


def _point(parameter: float, reaches: np.ndarray,
           txs: np.ndarray) -> RobustnessPoint:
    return RobustnessPoint(
        parameter=float(parameter), trials=len(reaches),
        mean_reachability=float(np.mean(reaches)),
        min_reachability=float(np.min(reaches)),
        mean_tx=float(np.mean(txs)),
        std_reach=float(np.std(reaches)),
        p5_reach=float(np.percentile(reaches, 5)),
        p50_reach=float(np.percentile(reaches, 50)))


def _chunk(items: List, workers: int) -> List[List]:
    """Contiguous non-empty chunks, ~2 per worker, preserving order."""
    if not items:
        return []
    size = max(1, -(-len(items) // (workers * 2)))
    return [items[i:i + size] for i in range(0, len(items), size)]


def _fan_out(points_fn, parameters: Sequence, workers: Optional[int],
             job_builder, worker_fn) -> List:
    """Run *points_fn* over *parameters*, optionally across processes.

    Results are reassembled in submission order, so the parallel curve is
    identical to the serial one regardless of worker count.  The pool is
    sized to the actual chunk count: asking for more workers than there
    are sweep points no longer spawns idle processes.
    """
    params = list(parameters)
    if workers is not None and workers > 1 and len(params) > 1:
        chunks = _chunk(params, workers)
        points: List = []
        with ProcessPoolExecutor(
                max_workers=min(workers, len(chunks))) as pool:
            for chunk_points in pool.map(
                    worker_fn, [job_builder(chunk) for chunk in chunks]):
                points.extend(chunk_points)
        return points
    return [points_fn(p) for p in params]


# ---------------------------------------------------------------------------
# Loss degradation
# ---------------------------------------------------------------------------

def _loss_point(topology: Topology, src: int, plan: RelayPlan,
                p: float, trials: int, seed: int, engine: str,
                recovery: Optional[RecoveryPolicy] = None,
                shards: int = 1,
                threads: Optional[int] = None) -> RobustnessPoint:
    """One loss-rate point: *trials* Bernoulli channels, batched or not.

    The per-trial seeds mix the loss rate into the stream
    (:func:`~repro.radio.impairments.trial_seeds`), so every point of the
    curve draws independent randomness.  Batched engines split the trial
    dimension over *shards* processes (bit-identical for any count).
    """
    seeds = trial_seeds(seed, p, trials)
    if engine != "serial":
        s = run_reactive_batch_sharded(
            topology, src, plan.relay_mask,
            extra_delay=plan.extra_delay,
            repeat_offsets=plan.repeat_offsets,
            loss=BernoulliBatchLoss(p, seeds), summary=True,
            recovery=recovery, engine=engine, workers=shards,
            threads=threads)
        return _point(p, s.reachability, s.num_tx)
    reaches = np.empty(trials)
    txs = np.empty(trials)
    for b in range(trials):
        trace = run_reactive(
            topology, src, plan.relay_mask,
            extra_delay=plan.extra_delay,
            repeat_offsets=plan.repeat_offsets,
            loss=CounterBernoulliLoss(p, int(seeds[b])),
            recovery=recovery)
        reaches[b] = trace.reachability
        txs[b] = trace.num_tx
    return _point(p, reaches, txs)


def _loss_chunk(job) -> List[RobustnessPoint]:
    """Worker-process entry point for parallel loss sweeps."""
    topology, src, plan, rates, trials, seed, engine, recovery = job
    return [_loss_point(topology, src, plan, p, trials, seed, engine,
                        recovery)
            for p in rates]


def loss_degradation(
    topology: Topology,
    source,
    loss_rates: Sequence[float],
    trials: int = 5,
    protocol: Optional[BroadcastProtocol] = None,
    harden: int = 0,
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "batch",
    recovery: Optional[RecoveryPolicy] = None,
    threads: Optional[int] = None,
) -> List[RobustnessPoint]:
    """Reachability of the (optionally hardened) protocol under Bernoulli
    loss, per loss rate.

    The wave is re-run reactively under each lossy channel (relays fire
    on their *actual* first reception), which is how a real deployment
    would behave; no recompilation knowledge of the losses is assumed.
    *recovery* layers the closed-loop recovery policy on top (it composes
    with *harden*, though the frontier sweep shows the two are usually
    alternatives).

    All trials of one loss rate run as one batch through
    :func:`~repro.sim.engine.run_reactive_batch` (``engine="batch"``,
    the default; ``"packed"`` / ``"compiled"`` select the faster
    slot-resolve tiers); ``engine="serial"`` runs the identical
    per-trial seeds through the one-trial engine and yields the same
    points.  ``workers`` splits the **trial dimension** of each point
    over processes for the batched engines (and falls back to fanning
    the loss rates out, order-preserving, for ``serial``); either way
    the curve is identical for any worker count.  ``threads`` sets the
    compiled tier's in-process kernel pool (``None`` = all cores when
    running unsharded, 1 inside process shards) — bit-identical at any
    width, like ``workers``.
    """
    _check_engine(engine)
    if protocol is None:
        protocol = protocol_for(topology)
    plan = harden_plan(protocol.relay_plan(topology, source), harden)
    src = topology.index(source)

    if engine != "serial":
        shards = effective_workers(workers, trials)
        return [_loss_point(topology, src, plan, p, trials, seed, engine,
                            recovery, shards, threads)
                for p in loss_rates]

    def job_builder(chunk):
        return (topology, src, plan, chunk, trials, seed, engine, recovery)

    return _fan_out(
        lambda p: _loss_point(topology, src, plan, p, trials, seed, engine,
                              recovery),
        loss_rates, workers, job_builder, _loss_chunk)


# ---------------------------------------------------------------------------
# Failure degradation
# ---------------------------------------------------------------------------

def _failure_dead_masks(topology: Topology, k: int, trials: int,
                        seed: int, src: int) -> np.ndarray:
    """(trials, n) stack of per-trial failure masks for one sweep point,
    seeded with the failure count mixed in (decorrelated across points)."""
    seeds = trial_seeds(seed, float(k), trials)
    return np.stack([
        random_dead_mask(topology, k, seed=int(s), protect=[src])
        for s in seeds])


def _failure_point(topology: Topology, source, src: int,
                   baseline_schedule, plan: Optional[RelayPlan],
                   k: int, trials: int, seed: int, recompile: bool,
                   engine: str,
                   recovery: Optional[RecoveryPolicy] = None,
                   shards: int = 1,
                   threads: Optional[int] = None) -> RobustnessPoint:
    dead_masks = _failure_dead_masks(topology, k, trials, seed, src)
    live = ~dead_masks
    if recompile:
        # Per-trial compilation cannot batch (each trial compiles a
        # different schedule), but the invariant relay plan is computed
        # once by the caller rather than once per trial.
        reaches = np.empty(trials)
        txs = np.empty(trials)
        for b in range(trials):
            compiled = compile_broadcast(topology, src, plan,
                                         dead_mask=dead_masks[b])
            reached = (compiled.trace.first_rx >= 0) & live[b]
            reaches[b] = float(reached.sum()) / float(live[b].sum())
            txs[b] = compiled.trace.num_tx
        return _point(k, reaches, txs)
    if engine != "serial":
        s = replay_batch_sharded(topology, baseline_schedule, src,
                                 dead_masks=dead_masks, summary=True,
                                 recovery=recovery, engine=engine,
                                 workers=shards, threads=threads)
        return _point(k, s.live_reachability(dead_masks), s.num_tx)
    reaches = np.empty(trials)
    txs = np.empty(trials)
    for b in range(trials):
        trace = replay(topology, baseline_schedule, src,
                       dead_mask=dead_masks[b], recovery=recovery)
        reached = (trace.first_rx >= 0) & live[b]
        reaches[b] = float(reached.sum()) / float(live[b].sum())
        txs[b] = trace.num_tx
    return _point(k, reaches, txs)


def _failure_chunk(job) -> List[RobustnessPoint]:
    """Worker-process entry point for parallel failure sweeps."""
    (topology, source, src, schedule, plan, counts, trials, seed,
     recompile, engine, recovery) = job
    return [_failure_point(topology, source, src, schedule, plan, k,
                           trials, seed, recompile, engine, recovery)
            for k in counts]


def failure_degradation(
    topology: Topology,
    source,
    failure_counts: Sequence[int],
    trials: int = 5,
    protocol: Optional[BroadcastProtocol] = None,
    recompile: bool = False,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[ScheduleCache] = None,
    engine: str = "batch",
    recovery: Optional[RecoveryPolicy] = None,
    threads: Optional[int] = None,
) -> List[RobustnessPoint]:
    """Live-node reachability after k random node deaths.

    ``recompile=False`` replays the pristine precompiled schedule around
    the corpses (failures unknown to the protocol);  ``recompile=True``
    recompiles with the failures known, letting completion/repair route
    around them.  Reachability is measured over surviving nodes only.

    The static branch replays all trials of one failure count as a batch
    (:func:`~repro.sim.engine.replay_batch`); the recompile branch
    compiles per trial (each trial yields a different schedule) but the
    invariant relay plan is computed once.  ``workers`` fans the failure
    counts out over processes; *cache* is the schedule cache used for the
    baseline compilation.  *recovery* applies the closed-loop recovery
    layer to the static replay (ignored by the recompile branch, which
    already routes around the known failures at compile time).
    """
    _check_engine(engine)
    if protocol is None:
        protocol = protocol_for(topology)
    src = topology.index(source)
    if recompile:
        plan = protocol.relay_plan(topology, source)
        baseline_schedule = None
    else:
        plan = None
        baseline_schedule = protocol.compile(topology, source,
                                             cache=cache).schedule

    if engine != "serial" and not recompile:
        shards = effective_workers(workers, trials)
        return [_failure_point(topology, source, src, baseline_schedule,
                               plan, k, trials, seed, recompile, engine,
                               recovery, shards, threads)
                for k in failure_counts]

    def job_builder(chunk):
        return (topology, source, src, baseline_schedule, plan, chunk,
                trials, seed, recompile, engine, recovery)

    return _fan_out(
        lambda k: _failure_point(topology, source, src, baseline_schedule,
                                 plan, k, trials, seed, recompile, engine,
                                 recovery),
        failure_counts, workers, job_builder, _failure_chunk)


# ---------------------------------------------------------------------------
# Recovery frontier: blind hardening vs closed-loop recovery
# ---------------------------------------------------------------------------

#: Recovery policies swept by default.  ``timeout=2, backoff=1`` aligns
#: retry checks with blind hardening's repeat offsets (+2, +4, ...), so
#: those policies retransmit on exactly the slots ``harden_plan(r)``
#: would blindly repeat on -- but only when a neighbour actually missed.
#: The ``election=False`` variants skip the last-resort repair election,
#: which under pure loss only adds spurious transmissions (a node that
#: merely *missed* its relay cannot tell it apart from a dead one); the
#: election-enabled entries earn their keep when relays actually die.
#: The suppression-free entry exposes what the Trickle counter is worth.
DEFAULT_RECOVERY_POLICIES = (
    RecoveryPolicy(timeout=2, max_retries=2, backoff=1, suppression_k=2,
                   election=False),
    RecoveryPolicy(timeout=2, max_retries=3, backoff=1, suppression_k=2,
                   election=False),
    RecoveryPolicy(timeout=2, max_retries=2, backoff=1, suppression_k=2),
    RecoveryPolicy(timeout=2, max_retries=2, backoff=2, suppression_k=2),
    RecoveryPolicy(timeout=2, max_retries=3, backoff=2, suppression_k=0),
)


@dataclass(frozen=True)
class FrontierPoint:
    """One (strategy, loss rate, failure count) cell of the frontier.

    ``pareto`` flags the points on the reachability-vs-energy Pareto
    front *within their (loss_rate, failures) cell*: no other strategy in
    the cell has both >= mean reachability and <= mean energy with one
    inequality strict.
    """

    strategy: str
    loss_rate: float
    failures: int
    trials: int
    mean_reachability: float
    min_reachability: float
    std_reach: float
    p5_reach: float
    p50_reach: float
    mean_tx: float
    mean_rx: float
    mean_energy_j: float
    pareto: bool = False

    def as_row(self) -> dict:
        return {
            "strategy": self.strategy,
            "loss_rate": self.loss_rate,
            "failures": self.failures,
            "trials": self.trials,
            "mean_reach": self.mean_reachability,
            "min_reach": self.min_reachability,
            "std_reach": self.std_reach,
            "p5_reach": self.p5_reach,
            "p50_reach": self.p50_reach,
            "mean_tx": self.mean_tx,
            "mean_rx": self.mean_rx,
            "mean_energy_j": self.mean_energy_j,
            "pareto": self.pareto,
        }


def _frontier_seeds(seed: int, p: float, k: int, trials: int) -> np.ndarray:
    """Per-trial loss seeds for one frontier cell.

    The (p, k) pair is mixed into one sweep parameter so each cell draws
    independent randomness, while all strategies of a cell share the
    identical channels — a paired comparison, which is what makes the
    per-cell Pareto fronts meaningful at modest trial counts.
    """
    return trial_seeds(seed, float(p) + 7919.0 * float(k), trials)


def _frontier_cell(topology: Topology, src: int,
                   strategies, p: float, k: int, trials: int, seed: int,
                   engine: str, shards: int = 1,
                   threads: Optional[int] = None) -> List[FrontierPoint]:
    """All strategies of one (loss rate, failure count) cell."""
    seeds = _frontier_seeds(seed, p, k, trials)
    dead_masks = (_failure_dead_masks(topology, k, trials, seed, src)
                  if k > 0 else None)
    tx_e = PAPER_RADIO_MODEL.tx_energy(PAPER_PACKET_BITS, PAPER_SPACING_M)
    rx_e = PAPER_RADIO_MODEL.rx_energy(PAPER_PACKET_BITS)
    out = []
    for label, plan, policy in strategies:
        if engine != "serial":
            s = run_reactive_batch_sharded(
                topology, src, plan.relay_mask,
                extra_delay=plan.extra_delay,
                repeat_offsets=plan.repeat_offsets,
                dead_masks=dead_masks,
                loss=BernoulliBatchLoss(p, seeds) if p > 0 else None,
                trials=trials, summary=True, recovery=policy,
                engine=engine, workers=shards, threads=threads)
            reaches = (s.live_reachability(dead_masks)
                       if dead_masks is not None else s.reachability)
            txs, rxs = s.num_tx.astype(float), s.num_rx.astype(float)
        else:
            reaches = np.empty(trials)
            txs = np.empty(trials)
            rxs = np.empty(trials)
            for b in range(trials):
                trace = run_reactive(
                    topology, src, plan.relay_mask,
                    extra_delay=plan.extra_delay,
                    repeat_offsets=plan.repeat_offsets,
                    dead_mask=None if dead_masks is None else dead_masks[b],
                    loss=(CounterBernoulliLoss(p, int(seeds[b]))
                          if p > 0 else None),
                    recovery=policy)
                if dead_masks is None:
                    reaches[b] = trace.reachability
                else:
                    live = ~dead_masks[b]
                    reached = (trace.first_rx >= 0) & live
                    reaches[b] = float(reached.sum()) / float(live.sum())
                txs[b] = trace.num_tx
                rxs[b] = trace.num_rx
        energy = txs * tx_e + rxs * rx_e
        out.append(FrontierPoint(
            strategy=label, loss_rate=float(p), failures=int(k),
            trials=trials,
            mean_reachability=float(np.mean(reaches)),
            min_reachability=float(np.min(reaches)),
            std_reach=float(np.std(reaches)),
            p5_reach=float(np.percentile(reaches, 5)),
            p50_reach=float(np.percentile(reaches, 50)),
            mean_tx=float(np.mean(txs)), mean_rx=float(np.mean(rxs)),
            mean_energy_j=float(np.mean(energy))))
    return _mark_pareto(out)


def _mark_pareto(cell: List[FrontierPoint]) -> List[FrontierPoint]:
    """Flag the reachability-vs-energy Pareto front within one cell."""
    out = []
    for a in cell:
        dominated = any(
            b.mean_reachability >= a.mean_reachability
            and b.mean_energy_j <= a.mean_energy_j
            and (b.mean_reachability > a.mean_reachability
                 or b.mean_energy_j < a.mean_energy_j)
            for b in cell)
        out.append(replace(a, pareto=not dominated))
    return out


def _frontier_chunk(job) -> List[List[FrontierPoint]]:
    """Worker-process entry point for parallel frontier sweeps."""
    topology, src, strategies, cells, trials, seed, engine = job
    return [_frontier_cell(topology, src, strategies, p, k, trials, seed,
                           engine)
            for p, k in cells]


def recovery_frontier(
    topology: Topology,
    source,
    loss_rates: Sequence[float] = (0.0, 0.1, 0.2),
    failure_counts: Sequence[int] = (0,),
    trials: int = 32,
    protocol: Optional[BroadcastProtocol] = None,
    hardening: Sequence[int] = (0, 1, 2, 3),
    policies: Sequence[RecoveryPolicy] = DEFAULT_RECOVERY_POLICIES,
    seed: int = 0,
    workers: Optional[int] = None,
    engine: str = "batch",
    threads: Optional[int] = None,
) -> List[FrontierPoint]:
    """Reachability-vs-energy Pareto sweep: blind hardening vs recovery.

    For every ``(loss_rate, failure_count)`` cell, runs the reactive wave
    under (a) ``harden_plan(plan, r)`` for each r in *hardening* (blind
    ARQ, strategy ``blind-r{r}``) and (b) the base plan plus each
    :class:`~repro.sim.recovery.RecoveryPolicy` in *policies* (strategies
    named by :meth:`~repro.sim.recovery.RecoveryPolicy.label`), all over
    the *same* per-cell channel and failure realisations, then marks each
    cell's Pareto-optimal points.  Energy uses the paper's first-order
    radio model at the paper's packet size and node spacing.

    This is the experiment behind the headline claim: a feedback-driven
    policy matches blind ``r=2`` hardening's reachability at a fraction
    of its energy.  Beyond-the-paper extension.
    """
    _check_engine(engine)
    if protocol is None:
        protocol = protocol_for(topology)
    base_plan = protocol.relay_plan(topology, source)
    src = topology.index(source)
    strategies = (
        [(f"blind-r{r}", harden_plan(base_plan, r), None)
         for r in hardening]
        + [(pol.label(), base_plan, pol) for pol in policies])
    cells = [(float(p), int(k)) for p in loss_rates for k in failure_counts]

    if engine != "serial":
        shards = effective_workers(workers, trials)
        cell_lists = [_frontier_cell(topology, src, strategies, p, k,
                                     trials, seed, engine, shards, threads)
                      for p, k in cells]
        return [point for cell in cell_lists for point in cell]

    def job_builder(chunk):
        return (topology, src, strategies, chunk, trials, seed, engine)

    cell_lists = _fan_out(
        lambda cell: _frontier_cell(topology, src, strategies,
                                    cell[0], cell[1], trials, seed, engine),
        cells, workers, job_builder, _frontier_chunk)
    return [point for cell in cell_lists for point in cell]
