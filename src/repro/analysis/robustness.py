"""Robustness analysis: how compiled schedules degrade under faults.

The paper compiles schedules for a perfect channel.  This module measures
(and mitigates) what happens when reality intrudes:

* **packet loss** — every decode independently erased with probability p
  (or whole-slot blackout bursts);
* **node failures** — k nodes die after deployment; the precompiled
  schedule is replayed around the corpses, or the broadcast is recompiled
  with knowledge of the failures (the engine routes around dead nodes via
  the completion/repair phases);
* **hardening** — repeating every relay transmission r extra times buys
  loss resilience at a quantifiable energy price.

These are extensions beyond the paper (clearly labelled as such in
EXPERIMENTS.md), built on the same engine and audit machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.base import BroadcastProtocol, RelayPlan
from ..core.compiler import compile_broadcast
from ..core.registry import protocol_for
from ..radio.impairments import BernoulliLoss, random_dead_mask
from ..sim.engine import replay, run_reactive
from ..topology.base import Topology


@dataclass(frozen=True)
class RobustnessPoint:
    """One measurement of a degradation curve."""

    parameter: float
    trials: int
    mean_reachability: float
    min_reachability: float
    mean_tx: float

    def as_row(self) -> dict:
        return {
            "parameter": self.parameter,
            "trials": self.trials,
            "mean_reach": self.mean_reachability,
            "min_reach": self.min_reachability,
            "mean_tx": self.mean_tx,
        }


def harden_plan(plan: RelayPlan, repeats: int) -> RelayPlan:
    """Return a copy of *plan* where every relay transmits ``repeats``
    extra times — blind ARQ hardening.

    Repeats are spaced two slots apart (offsets 2, 4, ...): the relay
    wave advances one hop per slot, so ``+1`` repeats would collide with
    the neighbouring relays' first transmissions and *reduce* clean-
    channel reachability; even offsets stay phase-aligned with the wave.
    """
    if repeats < 0:
        raise ValueError("repeats must be >= 0")
    hardened = plan.copy()
    if repeats == 0:
        return hardened
    extra = tuple(range(2, 2 * repeats + 1, 2))
    offsets = dict(hardened.repeat_offsets)
    for v in np.nonzero(hardened.relay_mask)[0]:
        existing = offsets.get(int(v), ())
        merged = tuple(sorted(set(existing) | set(extra)))
        offsets[int(v)] = merged
    hardened.repeat_offsets = offsets
    return hardened


def loss_degradation(
    topology: Topology,
    source,
    loss_rates: Sequence[float],
    trials: int = 5,
    protocol: Optional[BroadcastProtocol] = None,
    harden: int = 0,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """Reachability of the (optionally hardened) protocol under Bernoulli
    loss, per loss rate.

    The wave is re-run reactively under each lossy channel (relays fire
    on their *actual* first reception), which is how a real deployment
    would behave; no recompilation knowledge of the losses is assumed.
    """
    if protocol is None:
        protocol = protocol_for(topology)
    plan = harden_plan(protocol.relay_plan(topology, source), harden)
    src = topology.index(source)
    points = []
    for p in loss_rates:
        reaches = []
        txs = []
        for trial in range(trials):
            loss = BernoulliLoss(p, seed=seed * 1000 + trial)
            trace = run_reactive(
                topology, src, plan.relay_mask,
                extra_delay=plan.extra_delay,
                repeat_offsets=plan.repeat_offsets,
                loss=loss)
            reaches.append(trace.reachability)
            txs.append(trace.num_tx)
        points.append(RobustnessPoint(
            parameter=float(p), trials=trials,
            mean_reachability=float(np.mean(reaches)),
            min_reachability=float(np.min(reaches)),
            mean_tx=float(np.mean(txs))))
    return points


def failure_degradation(
    topology: Topology,
    source,
    failure_counts: Sequence[int],
    trials: int = 5,
    protocol: Optional[BroadcastProtocol] = None,
    recompile: bool = False,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """Live-node reachability after k random node deaths.

    ``recompile=False`` replays the pristine precompiled schedule around
    the corpses (failures unknown to the protocol);  ``recompile=True``
    recompiles with the failures known, letting completion/repair route
    around them.  Reachability is measured over surviving nodes only.
    """
    if protocol is None:
        protocol = protocol_for(topology)
    src = topology.index(source)
    baseline = protocol.compile(topology, source)
    points = []
    for k in failure_counts:
        reaches = []
        txs = []
        for trial in range(trials):
            dead = random_dead_mask(topology, k,
                                    seed=seed * 1000 + 31 * trial,
                                    protect=[src])
            if recompile:
                plan = protocol.relay_plan(topology, source)
                compiled = compile_broadcast(topology, src, plan,
                                             dead_mask=dead)
                trace = compiled.trace
            else:
                trace = replay(topology, baseline.schedule, src,
                               dead_mask=dead)
            live = ~dead
            reached = (trace.first_rx >= 0) & live
            reaches.append(float(reached.sum()) / float(live.sum()))
            txs.append(trace.num_tx)
        points.append(RobustnessPoint(
            parameter=float(k), trials=trials,
            mean_reachability=float(np.mean(reaches)),
            min_reachability=float(np.min(reaches)),
            mean_tx=float(np.mean(txs))))
    return points
