"""Network-lifetime estimation (extension of the paper's Section 4).

The paper's motivation is battery conservation ("each sensor node can
operate for a longer period of time"), and its related-work section
discusses LEACH's insight that *balancing* consumption matters, not just
minimising the total.  This module extends the paper's one-shot analysis
to repeated broadcasts so the examples can quantify that:

* every node starts with an energy budget;
* broadcast rounds are issued from a (configurable) sequence of sources;
* per round, each node pays its actual Tx/Rx energy from the compiled
  schedule for that source;
* lifetime = number of completed rounds until the first node would go
  negative (the classic "time to first death" metric).

Rotating the source (as LEACH rotates cluster heads) spreads the relay
burden; a fixed source exhausts its own row/column relays first.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..core.base import BroadcastProtocol
from ..core.cache import ScheduleCache
from ..core.registry import protocol_for
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..radio.impairments import BernoulliBatchLoss, trial_seeds
from ..sim.engine import replay_batch
from ..topology.base import Topology


@dataclass(frozen=True)
class LifetimeResult:
    """Outcome of a repeated-broadcast lifetime simulation."""

    topology: str
    rounds_completed: int
    first_death_node: Optional[tuple]
    residual_energy_j: np.ndarray
    energy_spent_j: np.ndarray
    rounds_budget: int

    @property
    def survived_all_rounds(self) -> bool:
        """True if the budget ran out before any node died."""
        return self.first_death_node is None

    def energy_imbalance(self) -> float:
        """Max/mean ratio of per-node consumption (1.0 = perfectly even).

        High imbalance predicts early first-death even when total energy
        looks fine — the LEACH argument.
        """
        spent = self.energy_spent_j
        mean = float(spent.mean())
        if mean == 0:
            return 1.0
        return float(spent.max()) / mean


def per_node_round_energy(topology: Topology, source,
                          protocol: Optional[BroadcastProtocol] = None,
                          model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                          packet_bits: int = PAPER_PACKET_BITS,
                          cache: Optional[ScheduleCache] = None,
                          loss_rate: Optional[float] = None,
                          loss_trials: int = 16,
                          seed: int = 0,
                          engine: str = "batch",
                          threads=None) -> np.ndarray:
    """Energy each node spends in one broadcast from *source* (joules).

    With *loss_rate* set, the compiled schedule is replayed under that
    Bernoulli channel for *loss_trials* batched Monte-Carlo trials
    (:func:`~repro.sim.engine.replay_batch`) and the *expected* per-node
    cost is returned: lossy rounds are cheaper in Tx (uninformed nodes
    cannot forward) but buy correspondingly less coverage.  *cache* is
    the schedule cache used for the compilation; *engine* selects the
    slot-resolve tier of the lossy replay (see :mod:`repro.sim.backend`).
    """
    if protocol is None:
        protocol = protocol_for(topology)
    compiled = protocol.compile(topology, source, cache=cache)
    if loss_rate is None:
        tx_counts = compiled.trace.tx_count_per_node().astype(np.float64)
        rx_counts = compiled.trace.rx_count_per_node().astype(np.float64)
    else:
        seeds = trial_seeds(seed, loss_rate, loss_trials)
        s = replay_batch(topology, compiled.schedule,
                         topology.index(source),
                         loss=BernoulliBatchLoss(loss_rate, seeds),
                         summary=True, engine=engine, threads=threads)
        tx_counts = s.tx_count.mean(axis=0)
        rx_counts = s.rx_count.mean(axis=0)
    e_tx = model.tx_energy(packet_bits, topology.tx_range())
    e_rx = model.rx_energy(packet_bits)
    return tx_counts * e_tx + rx_counts * e_rx


def _round_energy_job(job) -> np.ndarray:
    """Worker-process entry point: cost vector of one distinct source."""
    (topology, src, protocol, model, packet_bits, cache_path,
     loss_rate, loss_trials, seed, engine) = job
    cache = None if cache_path is None else ScheduleCache(cache_path)
    # Process fan-out already owns the cores: keep kernel pools narrow.
    return per_node_round_energy(topology, src, protocol, model,
                                 packet_bits, cache=cache,
                                 loss_rate=loss_rate,
                                 loss_trials=loss_trials, seed=seed,
                                 engine=engine, threads=1)


def simulate_lifetime(
    topology: Topology,
    sources: Iterable,
    battery_j: float,
    protocol: Optional[BroadcastProtocol] = None,
    model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
    packet_bits: int = PAPER_PACKET_BITS,
    max_rounds: int = 100_000,
    workers: Optional[int] = None,
    cache: Optional[ScheduleCache] = None,
    loss_rate: Optional[float] = None,
    loss_trials: int = 16,
    seed: int = 0,
    engine: str = "batch",
    threads=None,
) -> LifetimeResult:
    """Run broadcast rounds until the first node dies or *max_rounds*.

    *sources* is cycled; per-source round costs are compiled once and
    cached, so long lifetimes cost one compile per distinct source.
    ``workers`` compiles the distinct sources in parallel processes
    (sharing the disk tier of *cache*, like
    :func:`~repro.analysis.sweep.sweep_sources`); *loss_rate* switches
    the per-round cost to the batched Monte-Carlo expectation under a
    Bernoulli channel (see :func:`per_node_round_energy`), and *engine*
    the slot-resolve tier of that replay.
    """
    if battery_j <= 0:
        raise ValueError("battery_j must be positive")
    source_list: List = list(sources)
    if not source_list:
        raise ValueError("need at least one source")
    distinct: List = []
    seen = set()
    for src in source_list:
        key = tuple(src)
        if key not in seen:
            seen.add(key)
            distinct.append(src)
    costs = {}
    if workers is not None and workers > 1 and len(distinct) > 1:
        cache_path = None if cache is None else str(cache.path)
        jobs = [(topology, src, protocol, model, packet_bits, cache_path,
                 loss_rate, loss_trials, seed, engine) for src in distinct]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for src, cost in zip(distinct, pool.map(_round_energy_job,
                                                    jobs)):
                costs[tuple(src)] = cost
    else:
        for src in distinct:
            costs[tuple(src)] = per_node_round_energy(
                topology, src, protocol, model, packet_bits, cache=cache,
                loss_rate=loss_rate, loss_trials=loss_trials, seed=seed,
                engine=engine, threads=threads)

    residual = np.full(topology.num_nodes, battery_j, dtype=np.float64)
    spent = np.zeros(topology.num_nodes, dtype=np.float64)
    rounds = 0
    first_death = None
    while rounds < max_rounds:
        cost = costs[tuple(source_list[rounds % len(source_list)])]
        if (residual < cost).any():
            victim = int(np.argmax(cost - residual))
            first_death = tuple(topology.coord(victim))
            break
        residual -= cost
        spent += cost
        rounds += 1
    return LifetimeResult(
        topology=topology.name,
        rounds_completed=rounds,
        first_death_node=first_death,
        residual_energy_j=residual,
        energy_spent_j=spent,
        rounds_budget=max_rounds,
    )
