"""Plain-text table rendering for benchmark output and the CLI.

Deliberately dependency-free: benchmarks tee their stdout into
EXPERIMENTS.md-ready blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_number(value) -> str:
    """Human-friendly scalar formatting (scientific for small floats)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(rows: Sequence[Mapping], columns: Sequence[str],
                 headers: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows (dicts) as an aligned ASCII table."""
    headers = list(headers or columns)
    if len(headers) != len(columns):
        raise ValueError("headers and columns must have equal length")
    body: List[List[str]] = [
        [format_number(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in body)) if body else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_paper_comparison(rows: Sequence[Mapping], metrics: Sequence[str],
                            title: str) -> str:
    """Render measured-vs-paper rows: each metric gets a measured column
    and a paper column (taken from the row's ``paper`` sub-dict)."""
    flat = []
    for row in rows:
        paper = row.get("paper", {})
        out = {"topology": row["topology"]}
        for mkey in metrics:
            out[mkey] = row.get(mkey, "")
            out[f"paper_{mkey}"] = paper.get(mkey, "")
        flat.append(out)
    columns = ["topology"]
    headers = ["topology"]
    for mkey in metrics:
        columns += [mkey, f"paper_{mkey}"]
        headers += [mkey, f"{mkey} (paper)"]
    return render_table(flat, columns, headers, title=title)


def render_kv(pairs: Iterable[tuple], title: str | None = None) -> str:
    """Render key/value pairs as two aligned columns."""
    pairs = list(pairs)
    if not pairs:
        return title or ""
    width = max(len(str(k)) for k, _ in pairs)
    lines = [title] if title else []
    for k, v in pairs:
        lines.append(f"{str(k).ljust(width)} : {format_number(v)}")
    return "\n".join(lines)
