"""Cross-topology comparison: assembling the paper's Tables 2-5.

Each function returns plain data structures (lists of row dicts) so the
benchmarks, the CLI and EXPERIMENTS.md all print from the same source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.cache import ScheduleCache
from ..core.ideal import ideal_case, ideal_max_delay
from ..core.registry import protocol_for
from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..topology.builder import paper_topologies
from .sweep import SweepResult, strided_sources, sweep_sources

#: The paper's reported numbers, for side-by-side printing in the
#: benchmark output and EXPERIMENTS.md (Tables 2-5).
PAPER_TABLE2 = {
    "2D-3": {"tx": 255, "rx": 765, "energy_J": 2.61e-2},
    "2D-4": {"tx": 170, "rx": 680, "energy_J": 2.18e-2},
    "2D-8": {"tx": 102, "rx": 816, "energy_J": 2.35e-2},
    "3D-6": {"tx": 124, "rx": 744, "energy_J": 2.22e-2},
}
PAPER_TABLE3 = {
    "2D-3": {"tx": 301, "rx": 798, "energy_J": 2.81e-2},
    "2D-4": {"tx": 208, "rx": 714, "energy_J": 2.36e-2},
    "2D-8": {"tx": 143, "rx": 895, "energy_J": 2.66e-2},
    "3D-6": {"tx": 167, "rx": 815, "energy_J": 2.51e-2},
}
PAPER_TABLE4 = {
    "2D-3": {"tx": 308, "rx": 816, "energy_J": 2.88e-2},
    "2D-4": {"tx": 223, "rx": 778, "energy_J": 2.56e-2},
    "2D-8": {"tx": 147, "rx": 924, "energy_J": 2.74e-2},
    "3D-6": {"tx": 187, "rx": 923, "energy_J": 2.84e-2},
}
PAPER_TABLE5 = {
    "2D-3": {"ideal": 46, "protocol": 46},
    "2D-4": {"ideal": 45, "protocol": 45},
    "2D-8": {"ideal": 31, "protocol": 31},
    "3D-6": {"ideal": 20, "protocol": 20},
}

TOPOLOGY_ORDER = ("2D-3", "2D-4", "2D-8", "3D-6")


def table2_ideal(model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                 packet_bits: int = PAPER_PACKET_BITS) -> List[dict]:
    """Reproduce Table 2: ideal-case Tx / Rx / power on 512 nodes."""
    rows = []
    for label, topo in paper_topologies().items():
        ideal = ideal_case(topo, model, packet_bits)
        row = ideal.as_row()
        row["paper"] = PAPER_TABLE2[label]
        rows.append(row)
    return rows


@dataclass
class SweepCache:
    """Shared sweep results so Tables 3, 4 and 5 reuse one computation."""

    sweeps: Dict[str, SweepResult]

    @classmethod
    def compute(cls, stride: int = 1,
                model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                packet_bits: int = PAPER_PACKET_BITS,
                labels: Sequence[str] = TOPOLOGY_ORDER,
                workers: Optional[int] = None,
                cache: Optional[ScheduleCache] = None,
                symmetry: Optional[bool] = None) -> "SweepCache":
        """Sweep all four paper topologies (stride > 1 subsamples sources
        for quick runs; all grid corners are always included).

        Tables 3, 4 and 5 each read from the result, so one sweep per
        topology serves all three.  *workers* fans each sweep out over
        processes; *cache* (a :class:`~repro.core.cache.ScheduleCache`)
        reuses compilations across calls and — with ``path=`` — across
        runs and worker processes; *symmetry* selects the
        symmetry-reduced compilation path exactly as in
        :func:`~repro.analysis.sweep.sweep_sources` (identical results
        either way).
        """
        sweeps = {}
        for label in labels:
            topo = paper_topologies()[label]
            sources = None if stride == 1 else strided_sources(topo, stride)
            sweeps[label] = sweep_sources(
                topo, protocol_for(label), sources, model, packet_bits,
                workers=workers, cache=cache, symmetry=symmetry)
        return cls(sweeps=sweeps)


def table3_best(cache: SweepCache) -> List[dict]:
    """Reproduce Table 3: best case (minimum-power source) per topology."""
    rows = []
    for label in TOPOLOGY_ORDER:
        if label not in cache.sweeps:
            continue
        best = cache.sweeps[label].best_by_energy()
        row = best.as_row()
        row["paper"] = PAPER_TABLE3[label]
        rows.append(row)
    return rows


def table4_worst(cache: SweepCache) -> List[dict]:
    """Reproduce Table 4: worst case (maximum-power source) per topology."""
    rows = []
    for label in TOPOLOGY_ORDER:
        if label not in cache.sweeps:
            continue
        worst = cache.sweeps[label].worst_by_energy()
        row = worst.as_row()
        row["paper"] = PAPER_TABLE4[label]
        rows.append(row)
    return rows


def table5_delay(cache: SweepCache) -> List[dict]:
    """Reproduce Table 5: maximum delay, ideal vs our protocols."""
    rows = []
    for label in TOPOLOGY_ORDER:
        if label not in cache.sweeps:
            continue
        topo = paper_topologies()[label]
        rows.append({
            "topology": label,
            "ideal_max_delay": ideal_max_delay(topo),
            "protocol_max_delay": cache.sweeps[label].max_delay(),
            "paper": PAPER_TABLE5[label],
        })
    return rows


def power_ranking(cache: SweepCache, case: str = "best") -> List[str]:
    """Topology labels ordered by total power (the paper's headline
    finding: 2D-4 wins, 2D-3 loses)."""
    if case == "best":
        key = {lab: sw.best_by_energy().energy_j
               for lab, sw in cache.sweeps.items()}
    elif case == "worst":
        key = {lab: sw.worst_by_energy().energy_j
               for lab, sw in cache.sweeps.items()}
    elif case == "mean":
        key = {lab: sw.mean_energy() for lab, sw in cache.sweeps.items()}
    else:
        raise ValueError(f"unknown case {case!r}")
    return sorted(key, key=key.__getitem__)
