"""Evaluation harness: sweeps, table assembly, reporting, lifetime."""

from .compare import (PAPER_TABLE2, PAPER_TABLE3, PAPER_TABLE4, PAPER_TABLE5,
                      SweepCache, power_ranking, table2_ideal, table3_best,
                      table4_worst, table5_delay)
from .lifetime import (LifetimeResult, per_node_round_energy,
                       simulate_lifetime)
from .sensitivity import (SensitivityReport, loss_sensitivity, sensitivity,
                          sensitivity_sweeps, sensitivity_table)
from .scaling import ScalingPoint, scaling_curve, shape_for
from .robustness import (DEFAULT_RECOVERY_POLICIES, FrontierPoint,
                          RobustnessPoint, failure_degradation,
                          harden_plan, loss_degradation, recovery_frontier)
from .report import (format_number, render_kv, render_paper_comparison,
                     render_table)
from .sweep import (SweepResult, available_cpus, corner_sources,
                    effective_workers, strided_sources, sweep_sources)

__all__ = [
    "SweepResult",
    "sweep_sources",
    "available_cpus",
    "effective_workers",
    "strided_sources",
    "corner_sources",
    "SweepCache",
    "table2_ideal",
    "table3_best",
    "table4_worst",
    "table5_delay",
    "power_ranking",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "render_table",
    "render_paper_comparison",
    "render_kv",
    "format_number",
    "SensitivityReport",
    "sensitivity",
    "sensitivity_table",
    "sensitivity_sweeps",
    "loss_sensitivity",
    "ScalingPoint",
    "scaling_curve",
    "shape_for",
    "RobustnessPoint",
    "FrontierPoint",
    "DEFAULT_RECOVERY_POLICIES",
    "failure_degradation",
    "loss_degradation",
    "harden_plan",
    "recovery_frontier",
    "LifetimeResult",
    "simulate_lifetime",
    "per_node_round_energy",
]
