"""Data-gathering substrate: periodic sensor-to-base-station collection.

The paper's introduction frames its broadcast work against the
data-gathering protocols of its related work — LEACH [8] (whose First
Order Radio Model it adopts) and TEEN [10].  This subpackage implements
that substrate so the examples and benchmarks can connect the paper's
lattice structures to the lifetime arguments those works make:

* :class:`DirectGathering` — every node transmits straight to the base
  station (LEACH's strawman baseline);
* :class:`LeachGathering` — LEACH's rotating cluster heads;
* :class:`TreeGathering` — convergecast along the reversed delivery tree
  of the paper's broadcast protocol (the lattice-structured alternative).

All protocols are *energy models for one collection round*: they return
the per-node energy a round costs, which plugs into the same lifetime
machinery as the broadcast protocols (time to first node death).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..radio.energy import (PAPER_PACKET_BITS, PAPER_RADIO_MODEL,
                            FirstOrderRadioModel)
from ..topology.base import Topology

#: Standard LEACH data-fusion cost: 5 nJ per bit per aggregated signal.
E_AGGREGATE_J_PER_BIT = 5e-9


@dataclass(frozen=True)
class GatherLifetime:
    """Outcome of repeated collection rounds until first node death."""

    protocol: str
    rounds_completed: int
    first_death_node: Optional[tuple]
    mean_round_energy_j: float
    energy_imbalance: float


class GatherProtocol(abc.ABC):
    """One data-collection protocol (energy model per round)."""

    name: str = "gather"

    #: If set, per-round costs repeat with this period (e.g. 1 for direct
    #: uplink, the gateway-rotation length for tree convergecast) and
    #: :meth:`lifetime` uses a closed-form fast path instead of looping.
    #: ``None`` means the costs are history-dependent (LEACH's election).
    cost_period: Optional[int] = None

    def __init__(self,
                 model: FirstOrderRadioModel = PAPER_RADIO_MODEL,
                 packet_bits: int = PAPER_PACKET_BITS) -> None:
        self.model = model
        self.packet_bits = packet_bits

    @abc.abstractmethod
    def round_energy(self, topology: Topology, bs_position: np.ndarray,
                     round_no: int) -> np.ndarray:
        """Per-node energy (J) spent in collection round *round_no*."""

    def lifetime(self, topology: Topology, bs_position,
                 battery_j: float, max_rounds: int = 100_000
                 ) -> GatherLifetime:
        """Rounds until the first node would run out of battery."""
        if battery_j <= 0:
            raise ValueError("battery_j must be positive")
        bs = np.asarray(bs_position, dtype=np.float64)
        if self.cost_period is not None:
            return self._lifetime_periodic(topology, bs, battery_j,
                                           max_rounds)
        return self._lifetime_iterative(topology, bs, battery_j,
                                        max_rounds)

    def _lifetime_iterative(self, topology, bs, battery_j, max_rounds):
        residual = np.full(topology.num_nodes, battery_j)
        spent = np.zeros(topology.num_nodes)
        rounds = 0
        first_death = None
        total = 0.0
        while rounds < max_rounds:
            cost = self.round_energy(topology, bs, rounds)
            if (residual < cost).any():
                victim = int(np.argmax(cost - residual))
                first_death = tuple(topology.coord(victim))
                break
            residual -= cost
            spent += cost
            total += float(cost.sum())
            rounds += 1
        return self._result(topology, rounds, first_death, spent)

    def _lifetime_periodic(self, topology, bs, battery_j, max_rounds):
        """Closed form for periodic costs: jump whole cycles, then walk
        the final partial cycle round by round."""
        period = int(self.cost_period or 1)
        cycle = [self.round_energy(topology, bs, r) for r in range(period)]
        per_cycle = np.sum(cycle, axis=0)
        with np.errstate(divide="ignore"):
            cycles_per_node = np.where(per_cycle > 0,
                                       battery_j / per_cycle, np.inf)
        full_cycles = int(min(np.floor(cycles_per_node).min(),
                              max_rounds // period))
        residual = np.full(topology.num_nodes, battery_j) \
            - full_cycles * per_cycle
        spent = full_cycles * per_cycle
        rounds = full_cycles * period
        first_death = None
        while rounds < max_rounds:
            cost = cycle[rounds % period]
            if (residual < cost).any():
                victim = int(np.argmax(cost - residual))
                first_death = tuple(topology.coord(victim))
                break
            residual -= cost
            spent += cost
            rounds += 1
        return self._result(topology, rounds, first_death, spent)

    def _result(self, topology, rounds, first_death, spent):
        mean_spent = float(spent.mean()) if rounds else 0.0
        imbalance = (float(spent.max()) / mean_spent
                     if mean_spent > 0 else 1.0)
        total = float(spent.sum())
        return GatherLifetime(
            protocol=self.name,
            rounds_completed=rounds,
            first_death_node=first_death,
            mean_round_energy_j=total / rounds if rounds else 0.0,
            energy_imbalance=imbalance,
        )

    # -- shared helpers ---------------------------------------------------

    def _distances_to(self, topology: Topology,
                      point: np.ndarray) -> np.ndarray:
        pos = topology.positions()
        if point.shape[0] != pos.shape[1]:
            raise ValueError(
                f"base station is {point.shape[0]}-D but the topology is "
                f"{pos.shape[1]}-D")
        return np.linalg.norm(pos - point[None, :], axis=1)
