"""Data-gathering substrate (LEACH/TEEN-style related-work comparisons)."""

from .base import (E_AGGREGATE_J_PER_BIT, GatherLifetime, GatherProtocol)
from .direct import DirectGathering
from .leach import LeachGathering
from .teen import TeenGathering
from .tree import TreeGathering

__all__ = [
    "GatherProtocol",
    "GatherLifetime",
    "DirectGathering",
    "LeachGathering",
    "TreeGathering",
    "TeenGathering",
    "E_AGGREGATE_J_PER_BIT",
]
