"""LEACH-style rotating-cluster-head gathering (Heinzelman et al., the
paper's reference [8] and the source of its radio model).

Per round:

1. **Cluster-head election** — each node that has not served as head in
   the current epoch self-elects with LEACH's threshold
   ``T = p / (1 - p * (r mod 1/p))``; after ``1/p`` rounds everyone has
   served once and the epoch resets.
2. **Cluster formation** — every other node joins its nearest head.
3. **Collection** — members transmit ``k`` bits to their head; heads
   receive from each member, aggregate (``E_DA`` per bit per signal,
   their own included) and transmit one fused packet to the base station.

If no node elects itself (possible with small p), the round falls back to
direct transmission — matching the LEACH simulation convention.
"""

from __future__ import annotations

import numpy as np

from ..radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from ..topology.base import Topology
from .base import E_AGGREGATE_J_PER_BIT, GatherProtocol


class LeachGathering(GatherProtocol):
    """LEACH clustering with rotating heads (seeded, reproducible)."""

    name = "leach"

    def __init__(self, p: float = 0.05, seed: int = 0,
                 e_aggregate: float = E_AGGREGATE_J_PER_BIT,
                 model=PAPER_RADIO_MODEL,
                 packet_bits: int = PAPER_PACKET_BITS) -> None:
        super().__init__(model=model, packet_bits=packet_bits)
        if not 0.0 < p <= 1.0:
            raise ValueError(f"cluster-head probability must be in (0, 1], "
                             f"got {p}")
        self.p = float(p)
        self.seed = int(seed)
        self.e_aggregate = float(e_aggregate)
        self._epoch = max(1, round(1.0 / p))
        self._served: np.ndarray | None = None

    def _elect_heads(self, n: int, round_no: int) -> np.ndarray:
        if self._served is None or self._served.shape[0] != n:
            self._served = np.zeros(n, dtype=bool)
        if round_no % self._epoch == 0:
            self._served[:] = False
        r = round_no % self._epoch
        threshold = self.p / (1.0 - self.p * r)
        rng = np.random.default_rng((self.seed, round_no))
        draws = rng.random(n)
        heads = (draws < threshold) & ~self._served
        self._served |= heads
        return heads

    def round_energy(self, topology: Topology, bs_position: np.ndarray,
                     round_no: int) -> np.ndarray:
        n = topology.num_nodes
        k = float(self.packet_bits)
        heads = self._elect_heads(n, round_no)
        energy = np.zeros(n)
        d_bs = self._distances_to(topology, bs_position)
        if not heads.any():
            # degenerate round: everyone transmits directly
            return self.model.tx_energy_batch(k, d_bs)

        pos = topology.positions()
        head_idx = np.nonzero(heads)[0]
        # members join the nearest head
        diff = pos[:, None, :] - pos[head_idx][None, :, :]
        dist = np.linalg.norm(diff, axis=2)
        nearest = head_idx[np.argmin(dist, axis=1)]
        member_dist = dist[np.arange(n), np.argmin(dist, axis=1)]

        members = ~heads
        # members: one transmission to their head
        energy[members] = self.model.tx_energy_batch(
            k, member_dist[members])
        # heads: receive every member, aggregate all signals, uplink once
        cluster_sizes = np.bincount(nearest[members], minlength=n)[head_idx]
        energy[head_idx] += cluster_sizes * self.model.rx_energy(k)
        energy[head_idx] += (cluster_sizes + 1) * self.e_aggregate * k
        energy[head_idx] += self.model.tx_energy_batch(k, d_bs[head_idx])
        return energy
