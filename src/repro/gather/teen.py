"""TEEN-style threshold-driven reporting (the paper's reference [10]).

TEEN's insight over LEACH: for *reactive* applications, a sensor should
transmit only when its reading matters — when it first crosses a hard
threshold, and afterwards only when it has moved by more than a soft
threshold since the last report.  Energy then scales with how eventful
the environment is, not with time.

We model the sensed field as a seeded AR(1) random walk per node so the
event rate is controlled by the process volatility, and layer TEEN's
two-threshold filter on top of any clustering (we reuse the LEACH
election machinery for the cluster structure, as TEEN itself does).
"""

from __future__ import annotations

import numpy as np

from ..radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from ..topology.base import Topology
from .base import GatherProtocol
from .leach import LeachGathering


class TeenGathering(GatherProtocol):
    """Threshold-sensitive gathering on top of LEACH clusters.

    Parameters
    ----------
    hard_threshold:
        Reading level that makes a value reportable at all.
    soft_threshold:
        Minimum change since the last report to justify a new one.
    volatility:
        Standard deviation of the per-round AR(1) innovation of the
        simulated sensor field (bigger -> more events -> more traffic).
    """

    name = "teen"

    def __init__(self, p: float = 0.05, seed: int = 0,
                 hard_threshold: float = 1.0,
                 soft_threshold: float = 0.2,
                 volatility: float = 0.3,
                 model=PAPER_RADIO_MODEL,
                 packet_bits: int = PAPER_PACKET_BITS) -> None:
        super().__init__(model=model, packet_bits=packet_bits)
        if soft_threshold < 0 or volatility < 0:
            raise ValueError("thresholds and volatility must be >= 0")
        self.seed = int(seed)
        self.hard_threshold = float(hard_threshold)
        self.soft_threshold = float(soft_threshold)
        self.volatility = float(volatility)
        # cluster structure and election rotation come from LEACH
        self._leach = LeachGathering(p=p, seed=seed, model=model,
                                     packet_bits=packet_bits)
        self._field: np.ndarray | None = None
        self._last_report: np.ndarray | None = None

    def _advance_field(self, n: int, round_no: int) -> np.ndarray:
        if self._field is None or self._field.shape[0] != n:
            rng0 = np.random.default_rng((self.seed, 0x5EED))
            self._field = rng0.normal(0.0, 1.0, size=n)
            self._last_report = np.full(n, np.inf)
        rng = np.random.default_rng((self.seed, round_no))
        self._field = (0.95 * self._field
                       + rng.normal(0.0, self.volatility, size=n))
        return self._field

    def reporters(self, n: int, round_no: int) -> np.ndarray:
        """Boolean mask of nodes whose reading passes both thresholds."""
        field = self._advance_field(n, round_no)
        assert self._last_report is not None
        eligible = np.abs(field) >= self.hard_threshold
        moved = np.abs(field - self._last_report) >= self.soft_threshold
        report = eligible & (moved | np.isinf(self._last_report))
        self._last_report = np.where(report, field, self._last_report)
        return report

    def round_energy(self, topology: Topology, bs_position: np.ndarray,
                     round_no: int) -> np.ndarray:
        n = topology.num_nodes
        k = float(self.packet_bits)
        report = self.reporters(n, round_no)
        heads = self._leach._elect_heads(n, round_no)
        energy = np.zeros(n)
        d_bs = self._distances_to(topology, bs_position)
        if not heads.any():
            idx = np.nonzero(report)[0]
            energy[idx] = self.model.tx_energy_batch(k, d_bs[idx])
            return energy

        pos = topology.positions()
        head_idx = np.nonzero(heads)[0]
        diff = pos[:, None, :] - pos[head_idx][None, :, :]
        dist = np.linalg.norm(diff, axis=2)
        member_dist = dist[np.arange(n), np.argmin(dist, axis=1)]
        nearest = head_idx[np.argmin(dist, axis=1)]

        senders = report & ~heads
        energy[senders] = self.model.tx_energy_batch(
            k, member_dist[senders])
        # heads listen for member reports and forward a fused packet to
        # the base station only if their cluster produced anything (or
        # they themselves report)
        arriving = np.bincount(nearest[senders], minlength=n)[head_idx]
        energy[head_idx] += arriving * self.model.rx_energy(k)
        active = (arriving > 0) | report[head_idx]
        energy[head_idx[active]] += self.model.tx_energy_batch(
            k, d_bs[head_idx[active]])
        return energy
