"""Convergecast along the paper's broadcast structure, reversed.

The delivery tree of a compiled lattice broadcast (who first informed
whom) is a shortest-path spanning tree rooted at the gateway.  Reversing
it gives a natural collection structure: every node transmits its fused
reading one lattice hop towards the gateway, interior nodes aggregate
their children (data-fusion circuitry is part of the paper's node model,
reference [7]), and the gateway uplinks one packet to the base station.

This is the lattice-structured alternative to LEACH's clustering: no
long-range member-to-head hops, perfectly short transmissions, at the
cost of a fixed tree (the root's neighbourhood carries the relay burden
unless the gateway rotates).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.base import BroadcastProtocol
from ..core.registry import protocol_for
from ..radio.energy import PAPER_PACKET_BITS, PAPER_RADIO_MODEL
from ..topology.base import Topology
from .base import E_AGGREGATE_J_PER_BIT, GatherProtocol


class TreeGathering(GatherProtocol):
    """Aggregating convergecast on the reversed broadcast delivery tree.

    *gateway* may be a single coordinate or a list of coordinates: with a
    list the gateway rotates round-robin between rounds (one tree per
    gateway, built lazily), spreading the root-neighbourhood relay burden
    exactly the way LEACH rotates cluster heads.
    """

    name = "tree"

    def __init__(self, gateway, protocol: Optional[BroadcastProtocol] = None,
                 e_aggregate: float = E_AGGREGATE_J_PER_BIT,
                 model=PAPER_RADIO_MODEL,
                 packet_bits: int = PAPER_PACKET_BITS) -> None:
        super().__init__(model=model, packet_bits=packet_bits)
        if gateway and isinstance(gateway[0], (tuple, list)):
            self.gateways = [tuple(g) for g in gateway]
        else:
            self.gateways = [tuple(gateway)]
        self.gateway = self.gateways[0]
        self.cost_period = len(self.gateways)
        self.protocol = protocol
        self.e_aggregate = float(e_aggregate)
        self._trees: Dict[tuple, Dict[int, int]] = {}
        self._for_topology: Optional[int] = None

    def _build_tree(self, topology: Topology,
                    gateway: Optional[tuple] = None) -> Dict[int, int]:
        gateway = gateway or self.gateway
        if self._for_topology != id(topology):
            self._trees.clear()
            self._for_topology = id(topology)
        if gateway in self._trees:
            return self._trees[gateway]
        protocol = self.protocol or protocol_for(topology)
        compiled = protocol.compile(topology, gateway)
        if not compiled.reached_all:
            raise ValueError(
                "gateway broadcast does not span the network; "
                "cannot build a convergecast tree")
        self._trees[gateway] = compiled.trace.delivery_tree()
        return self._trees[gateway]

    def round_energy(self, topology: Topology, bs_position: np.ndarray,
                     round_no: int) -> np.ndarray:
        gateway = self.gateways[round_no % len(self.gateways)]
        tree = self._build_tree(topology, gateway)
        n = topology.num_nodes
        k = float(self.packet_bits)
        gateway_idx = topology.index(gateway)
        pos = topology.positions()
        energy = np.zeros(n)

        # every non-gateway node transmits once, one hop up the tree
        children = np.bincount(
            np.asarray([parent for parent in tree.values()]),
            minlength=n)
        for child, parent in tree.items():
            d = float(np.linalg.norm(pos[child] - pos[parent]))
            energy[child] += self.model.tx_energy(k, d)
            energy[parent] += self.model.rx_energy(k)
        # aggregation: each node fuses its children's packets + its own
        energy += (children + 1) * self.e_aggregate * k
        # gateway uplinks the fused packet to the base station
        d_bs = float(np.linalg.norm(pos[gateway_idx] - bs_position))
        energy[gateway_idx] += self.model.tx_energy(k, d_bs)
        return energy

    def max_tree_depth(self, topology: Topology) -> int:
        """Depth of the convergecast tree (collection latency in hops)."""
        tree = self._build_tree(topology, self.gateways[0])
        depth = 0
        for node in tree:
            d = 0
            cur = node
            while cur in tree:
                cur = tree[cur]
                d += 1
            depth = max(depth, d)
        return depth
