"""Direct-transmission gathering: every node sends straight to the base
station each round (the baseline LEACH improves on)."""

from __future__ import annotations

import numpy as np

from ..topology.base import Topology
from .base import GatherProtocol


class DirectGathering(GatherProtocol):
    """Each node transmits its reading directly to the base station.

    Far nodes pay the quadratic amplifier cost every round, so the energy
    load is maximally unbalanced — the classic motivation for clustering.
    """

    name = "direct"
    cost_period = 1

    def round_energy(self, topology: Topology, bs_position: np.ndarray,
                     round_no: int) -> np.ndarray:
        d = self._distances_to(topology, bs_position)
        return self.model.tx_energy_batch(float(self.packet_bits), d)
