#!/usr/bin/env python
"""The Section 3.1 design discussion, measured: avoid collisions by
delaying, or let them happen and retransmit?

The paper weighs the two options qualitatively and picks retransmission.
This example puts numbers on the argument across all source positions of
the 32x16 2D-4 mesh (subsampled for speed), and also shows the slot-level
mechanics of the collision the discussion is about.

Run:  python examples/protocol_tradeoffs.py
"""

from repro import compute_metrics, make_topology, protocol_for
from repro.analysis import render_table, strided_sources, sweep_sources
from repro.core.baselines import DelayedMesh2D4Protocol
from repro.viz import slot_timeline


def show_collision_mechanics() -> None:
    print("=" * 68)
    print("the collision in question (16x16 mesh, source (6,8))")
    print("=" * 68)
    mesh = make_topology("2D-4", shape=(16, 16))
    compiled = protocol_for(mesh).compile(mesh, (6, 8))
    print(slot_timeline(mesh, compiled, max_slots=6))
    print()
    print("slot 2-3: the X-axis wave and the source's column start fire "
          "together;\nthe designated X-axis nodes retransmit one slot "
          "later instead of anyone waiting.")


def sweep_comparison() -> None:
    print()
    print("=" * 68)
    print("sweep over sources: retransmit (paper) vs delay-to-avoid")
    print("=" * 68)
    mesh = make_topology("2D-4")
    sources = strided_sources(mesh, 16)
    rows = []
    for name, proto in [("retransmit (paper)", protocol_for("2D-4")),
                        ("delay-to-avoid", DelayedMesh2D4Protocol())]:
        sweep = sweep_sources(mesh, protocol=proto, sources=sources)
        rows.append({
            "variant": name,
            "sources": len(sweep),
            "all reached": sweep.all_reached(),
            "mean tx": round(sweep.mean_tx(), 1),
            "mean rx": round(sweep.mean_rx(), 1),
            "mean energy_J": round(sweep.mean_energy(), 5),
            "max delay": sweep.max_delay(),
        })
    print(render_table(rows, ["variant", "sources", "all reached",
                              "mean tx", "mean rx", "mean energy_J",
                              "max delay"]))
    ret, dly = rows
    print()
    if (dly["max delay"] >= ret["max delay"]
            and dly["mean energy_J"] >= ret["mean energy_J"]):
        print("-> measured: delaying is no better on either axis — the "
              "paper's choice of retransmission is confirmed.")
    else:
        print("-> measured trade-off:")
        print(f"   delay cost     : {dly['max delay'] - ret['max delay']} "
              "slots of extra worst-case delay for the delay variant")
        print(f"   duplicate cost : {dly['mean rx'] - ret['mean rx']:.1f} "
              "extra receptions per broadcast")


def main() -> None:
    show_collision_mechanics()
    sweep_comparison()


if __name__ == "__main__":
    main()
