#!/usr/bin/env python
"""Regular vs random deployment (the intro's claim, refs [12, 14]).

"It is known that the WSN with regular topology can communicate more
efficiently than the WSN with random topology.  Therefore, we should
adopt the WSN with regular topology when the condition permits."

This example quantifies the claim on a battlefield-style scenario: 512
sensors over the same area, either placed on the 32x16 grid (aerial
placement possible) or scattered at random (air-dropped).  The random
network has no structure to exploit, so it broadcasts by flooding (raw,
staggered, gossip); the regular one uses the paper's compiled schedule.

Run:  python examples/random_vs_regular.py
"""

import numpy as np

from repro import (RandomDiskTopology, compute_metrics, make_topology,
                   protocol_for)
from repro.analysis import render_table
from repro.core.baselines import (FloodingProtocol, GossipProtocol,
                                  StaggeredFloodingProtocol)

AREA = (16.0, 8.0)   # metres, same as the 32x16 grid at 0.5 m spacing


def regular_row():
    mesh = make_topology("2D-4")
    compiled = protocol_for(mesh).compile(mesh, (16, 8))
    m = compute_metrics(compiled.trace, mesh)
    return {
        "deployment": "regular 32x16 grid + paper protocol",
        "tx": m.tx, "rx": m.rx, "delay": m.delay_slots,
        "energy_J": round(m.energy_j, 5),
        "reach_%": round(100 * m.reachability, 1),
    }


def random_rows(seed: int):
    topo = RandomDiskTopology(512, *AREA, radio_range=0.8, seed=seed)
    degs = topo.degrees
    print(f"  random deployment seed {seed}: mean degree "
          f"{degs.mean():.1f}, isolated nodes {(degs == 0).sum()}")
    src = topo.coord(int(np.argmax(degs)))
    rows = []
    for name, proto, kw in [
        ("flooding", FloodingProtocol(), {}),
        ("staggered flooding", StaggeredFloodingProtocol(4),
         {"completion": False, "repair": False}),
        ("gossip p=0.8", GossipProtocol(0.8, seed=seed),
         {"completion": False, "repair": False}),
    ]:
        compiled = proto.compile(topo, src, **kw)
        m = compute_metrics(compiled.trace, topo)
        rows.append({
            "deployment": f"random + {name} (seed {seed})",
            "tx": m.tx, "rx": m.rx, "delay": m.delay_slots,
            "energy_J": round(m.energy_j, 5),
            "reach_%": round(100 * m.reachability, 1),
        })
    return rows


def main() -> None:
    print("regular vs random deployment, 512 nodes on "
          f"{AREA[0]:.0f} m x {AREA[1]:.0f} m\n")
    rows = [regular_row()]
    for seed in (0, 1):
        rows.extend(random_rows(seed))
    print()
    print(render_table(
        rows, ["deployment", "tx", "rx", "delay", "energy_J", "reach_%"]))

    reg = rows[0]
    rnd = [r for r in rows if r["deployment"].startswith("random + flood")]
    factor = min(r["energy_J"] for r in rnd) / reg["energy_J"]
    print(f"\n-> the regular deployment broadcasts at ~{factor:.1f}x less "
          "energy than reliable flooding on the random one, with "
          "deterministic delay and guaranteed 100% reachability — the "
          "paper's premise for designing regular-topology protocols")


if __name__ == "__main__":
    main()
