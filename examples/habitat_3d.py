#!/usr/bin/env python
"""3D sensor lattice in a space habitat (the paper's reference [15]:
"wireless distributed sensor networks for in-situ exploration").

An 8x8x8 sensor lattice fills a habitat module; a leak alarm raised by
any sensor must reach every node fast and cheaply.  This example runs the
3D-6 protocol and dissects its two-part structure:

* part 1 — the 2D-4 broadcast inside the source's XY plane,
* part 2 — the z-relay columns (rule R5's Lee lattice) carrying the
  alarm across planes while simultaneously tiling each plane,

then compares against running an independent 2D-4 broadcast per plane
(the strawman the paper rejects in Section 3.4).

Run:  python examples/habitat_3d.py
"""

from repro import compute_metrics, make_topology, protocol_for
from repro.analysis import render_table
from repro.topology.lee import lee_cover_gaps, lee_points
from repro.viz import wave_map


def main() -> None:
    mesh = make_topology("3D-6")  # 8 x 8 x 8
    source = (4, 4, 4)
    protocol = protocol_for(mesh)
    compiled = protocol.compile(mesh, source)
    assert compiled.reached_all
    metrics = compute_metrics(compiled.trace, mesh)

    print(f"alarm broadcast from {source} on {mesh.num_nodes} nodes:")
    print(f"  T_x {metrics.tx}, R_x {metrics.rx}, "
          f"energy {metrics.energy_j:.3e} J, "
          f"delay {metrics.delay_slots} slots")

    # --- dissect the two-part structure --------------------------------
    zcols = lee_points(8, 8, (4, 4))
    gaps = lee_cover_gaps(8, 8, (4, 4))
    print(f"\nz-relay columns per plane (R5 lattice): {len(zcols)}")
    print(f"Lee-tiling border gaps per plane        : {len(gaps)}")
    print(f"completion relays the compiler added    : "
          f"{len(compiled.completions)} (the paper's gray border nodes)")

    print("\nwhen does each plane hear the alarm?")
    rows = []
    for z in range(1, 9):
        plane = mesh.plane_indices(z)
        fr = compiled.trace.first_rx[plane]
        rows.append({"plane z": z,
                     "first node (slot)": int(fr.min()),
                     "fully covered (slot)": int(fr.max())})
    print(render_table(rows, ["plane z", "first node (slot)",
                              "fully covered (slot)"]))

    print("\narrival slots inside the source plane (z=4):")
    print(wave_map(mesh, compiled, z=4, what="rx"))

    # --- strawman: an independent 2D-4 broadcast per plane -------------
    plane_mesh = make_topology("2D-4", shape=(8, 8))
    plane_compiled = protocol_for(plane_mesh).compile(plane_mesh, (4, 4))
    plane_m = compute_metrics(plane_compiled.trace, plane_mesh)
    strawman_tx = plane_m.tx * 8 + 7        # plus a z-column to seed each
    strawman_energy = plane_m.energy_j * 8

    print("\nper-plane 2D-4 broadcast instead of z-relays (Section 3.4's "
          "rejected design):")
    print(render_table([
        {"design": "3D-6 protocol (paper)", "tx": metrics.tx,
         "energy_J": metrics.energy_j},
        {"design": "2D-4 per plane (strawman)", "tx": strawman_tx,
         "energy_J": strawman_energy},
    ], ["design", "tx", "energy_J"]))
    saving = 100 * (1 - metrics.tx / strawman_tx)
    print(f"\n-> the z-relay design transmits {saving:.0f}% less, because "
          "one z-relay transmission forwards across planes AND covers a "
          "Lee sphere of its own plane (optimal ETR 5/6)")


if __name__ == "__main__":
    main()
