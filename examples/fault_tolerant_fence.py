#!/usr/bin/env python
"""A perimeter-monitoring fence that keeps working when reality intrudes.

The paper's battlefield/forest motivation implies a harsh environment:
packets get lost, nodes die.  The paper itself assumes a pristine channel
— this example uses the library's fault-injection extensions to answer
the questions a deployment engineer would ask:

1. How fast does the compiled broadcast degrade with packet loss?
2. Does blind ARQ hardening (every relay repeats) fix it, and what does
   it cost?
3. After k sensors die, is it enough to keep replaying the precompiled
   schedule, or must the network recompile around the corpses?

Run:  python examples/fault_tolerant_fence.py
"""

from repro import make_topology
from repro.analysis import (failure_degradation, loss_degradation,
                            render_table)

SOURCE = (16, 8)


def loss_study(mesh) -> None:
    print("=" * 66)
    print("1+2: packet loss vs blind ARQ hardening (alarm from the gate)")
    print("=" * 66)
    rows = []
    for harden, label in [(0, "paper schedule"),
                          (1, "harden x1 (each relay repeats once)"),
                          (2, "harden x2")]:
        for p in loss_degradation(mesh, SOURCE, [0.0, 0.05, 0.10],
                                  trials=5, harden=harden, seed=3):
            rows.append({
                "schedule": label,
                "loss": p.parameter,
                "mean reach": round(p.mean_reachability, 3),
                "worst reach": round(p.min_reachability, 3),
                "tx/broadcast": round(p.mean_tx, 0),
            })
    print(render_table(rows, ["schedule", "loss", "mean reach",
                              "worst reach", "tx/broadcast"]))
    print("\n-> the paper's schedule assumes every decode succeeds; at 5% "
          "loss a third of\n   the fence goes deaf.  One staggered repeat "
          "per relay restores ~99% coverage\n   for ~2x the energy.")


def failure_study(mesh) -> None:
    print()
    print("=" * 66)
    print("3: sensors die — replay the old schedule or recompile?")
    print("=" * 66)
    rows = []
    for recompile, label in [(False, "replay precompiled schedule"),
                             (True, "recompile around failures")]:
        for p in failure_degradation(mesh, SOURCE, [5, 15, 30],
                                     trials=5, recompile=recompile,
                                     seed=3):
            rows.append({
                "strategy": label,
                "dead nodes": int(p.parameter),
                "mean reach (live)": round(p.mean_reachability, 3),
                "worst reach (live)": round(p.min_reachability, 3),
            })
    print(render_table(rows, ["strategy", "dead nodes",
                              "mean reach (live)", "worst reach (live)"]))
    print("\n-> a static schedule loses whole branches behind each corpse; "
          "recompiling —\n   which the offline compiler makes cheap — "
          "routes around them and keeps\n   every surviving sensor "
          "informed.")


def main() -> None:
    mesh = make_topology("2D-4")  # 32x16 fence segment grid
    print(f"fence: {mesh.num_nodes} sensors on a {mesh.m}x{mesh.n} "
          f"lattice, alarms from {SOURCE}\n")
    loss_study(mesh)
    failure_study(mesh)


if __name__ == "__main__":
    main()
