#!/usr/bin/env python
"""Render the paper's protocol figures (5, 7, 8, 9) as SVG files.

Each figure is compiled from the worked example in the paper, then drawn
with the paper's colour code: the source in red, relay nodes black,
retransmitters (the paper's gray nodes) gray, compiler-added border
relays blue, and idle nodes white.  Figures 5/7/8 additionally label each
node with its first-reception slot — the per-edge transmission sequence
numbers of the original figures, viewed per node.

Run:  python examples/render_paper_figures.py [output_dir]
"""

import sys
from pathlib import Path

from repro import make_topology, protocol_for
from repro.viz import save_broadcast_svg, summary_block

FIGURES = {
    "figure5_2d4": ("2D-4", (16, 16), (6, 8), {}),
    "figure7_2d8": ("2D-8", (14, 14), (5, 9), {}),
    "figure8_2d3": ("2D-3", (20, 14), (10, 7), {}),
    "figure9_3d6": ("3D-6", (16, 16, 4), (6, 8, 2), {"plane_z": 2}),
}


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "paper_figures")
    out_dir.mkdir(exist_ok=True)
    for name, (label, shape, source, extra) in FIGURES.items():
        topo = make_topology(label, shape=shape)
        compiled = protocol_for(topo).compile(topo, source)
        kwargs = dict(extra)
        if "plane_z" not in kwargs:
            kwargs["label_first_rx"] = True
        path = save_broadcast_svg(
            str(out_dir / f"{name}.svg"), topo, compiled, **kwargs)
        print(f"{name}: {summary_block(topo, compiled)}")
        print(f"  -> {path}")
        if label == "3D-6":
            # also render the plane above the source to show the z-relays
            save_broadcast_svg(
                str(out_dir / f"{name}_plane3.svg"), topo, compiled,
                plane_z=3)
            print(f"  -> {out_dir / (name + '_plane3.svg')}")
    print(f"\nAll figures written to {out_dir}/")


if __name__ == "__main__":
    main()
