#!/usr/bin/env python
"""Quickstart: broadcast a packet on the paper's 2D-4 evaluation mesh.

Walks through the whole public API surface in ~40 lines:

1. build a topology,
2. pick the matching Section-3 protocol,
3. compile a broadcast (relay rules + completion/repair, audited),
4. read the paper's metrics off the trace,
5. render the relay map (the content of the paper's Fig. 5).

Run:  python examples/quickstart.py
"""

from repro import (compute_metrics, make_topology, protocol_for,
                   validate_broadcast)
from repro.viz import relay_map, summary_block


def main() -> None:
    # The paper's evaluation network: 512 nodes as a 32x16 mesh with
    # 4 neighbours, 0.5 m spacing.
    mesh = make_topology("2D-4")
    print(f"topology: {mesh.name}, {mesh.num_nodes} nodes, "
          f"diameter {mesh.diameter} hops")

    # The matching broadcast protocol (Section 3.1).
    protocol = protocol_for(mesh)

    # Compile a broadcast from a central source.  The compiler runs the
    # relay rules under the collision model and patches what the rules
    # miss, so the result is guaranteed to reach every node.
    source = (16, 8)
    compiled = protocol.compile(mesh, source)
    assert compiled.reached_all

    # Independently audit the schedule (replay + causality checks).
    report = validate_broadcast(mesh, compiled.schedule,
                                mesh.index(source))
    report.raise_if_failed()
    print("schedule audit: OK")

    # The paper's Section 4 metrics.
    metrics = compute_metrics(compiled.trace, mesh)
    print(f"T_x = {metrics.tx} transmissions")
    print(f"R_x = {metrics.rx} receptions ({metrics.duplicates} dup)")
    print(f"energy = {metrics.energy_j:.3e} J")
    print(f"delay = {metrics.delay_slots} slots "
          f"(hop lower bound: {mesh.eccentricity(source)})")

    print()
    print(summary_block(mesh, compiled))
    print()
    print(relay_map(mesh, compiled))


if __name__ == "__main__":
    main()
