#!/usr/bin/env python
"""Structural-health monitoring of a building floor.

The paper motivates regular WSNs with deployments on "buildings, bridges,
flat areas" — sensors glued to a floor slab on a regular grid, no plug-in
power, periodic alarm broadcasts.  This example does the engineering
study such a deployment needs:

* compare the three 2D topologies on the same 16 m x 8 m floor
  (which one keeps the network alive longest?);
* estimate battery lifetime under daily status broadcasts, for a fixed
  gateway source vs a rotating source (the LEACH insight the paper's
  related-work section discusses);
* show where the energy hot-spots are.

Run:  python examples/building_monitor.py
"""

import numpy as np

from repro import compute_metrics, make_topology, protocol_for
from repro.analysis import (render_table, simulate_lifetime,
                            per_node_round_energy)

#: A coin-cell class battery (~2 J usable at sensor voltages) scaled down
#: so the simulation stays short; ratios between topologies are what
#: matter.
BATTERY_J = 0.05
BROADCASTS_PER_DAY = 24


def topology_comparison():
    print("=" * 64)
    print("Step 1: which 2D topology for the floor?")
    print("=" * 64)
    rows = []
    for label in ("2D-3", "2D-4", "2D-8"):
        mesh = make_topology(label)          # 32 x 16 over 16 m x 8 m
        compiled = protocol_for(mesh).compile(mesh, (16, 8))
        m = compute_metrics(compiled.trace, mesh)
        rows.append({
            "topology": label,
            "tx": m.tx, "rx": m.rx,
            "energy_per_broadcast_J": m.energy_j,
            "delay_slots": m.delay_slots,
        })
    print(render_table(
        rows, ["topology", "tx", "rx", "energy_per_broadcast_J",
               "delay_slots"]))
    best = min(rows, key=lambda r: r["energy_per_broadcast_J"])
    print(f"\n-> cheapest per broadcast: {best['topology']} "
          "(the paper's Table 3 finding)")
    return best["topology"]


def lifetime_study(label: str):
    print()
    print("=" * 64)
    print(f"Step 2: lifetime on {label} under daily alarms")
    print("=" * 64)
    mesh = make_topology(label)
    gateway = (1, 8)   # wall-mounted gateway, mid-left edge

    fixed = simulate_lifetime(mesh, [gateway], battery_j=BATTERY_J)
    corners = [(1, 1), (32, 1), (32, 16), (1, 16), (16, 8)]
    rotated = simulate_lifetime(mesh, [gateway] + corners,
                                battery_j=BATTERY_J)

    rows = [
        {"schedule": "fixed gateway source",
         "broadcast rounds": fixed.rounds_completed,
         "days": fixed.rounds_completed / BROADCASTS_PER_DAY,
         "first dead node": str(fixed.first_death_node),
         "max/mean load": round(fixed.energy_imbalance(), 2)},
        {"schedule": "rotating source (LEACH-style)",
         "broadcast rounds": rotated.rounds_completed,
         "days": rotated.rounds_completed / BROADCASTS_PER_DAY,
         "first dead node": str(rotated.first_death_node),
         "max/mean load": round(rotated.energy_imbalance(), 2)},
    ]
    print(render_table(rows, ["schedule", "broadcast rounds", "days",
                              "first dead node", "max/mean load"]))
    gain = rotated.rounds_completed / max(1, fixed.rounds_completed)
    print(f"\n-> rotating the source extends time-to-first-death "
          f"{gain:.2f}x")


def hotspot_map(label: str):
    print()
    print("=" * 64)
    print(f"Step 3: energy hot-spots on {label} (fixed gateway)")
    print("=" * 64)
    mesh = make_topology(label)
    cost = per_node_round_energy(mesh, (1, 8))
    grid = cost.reshape(16, 32)  # rows are y, columns are x
    scale = grid.max()
    print("relative per-round energy (0-9 scale), gateway at (1,8):")
    for y in range(15, -1, -1):
        line = "".join(str(int(9 * grid[y, x] / scale))
                       for x in range(32))
        print(f"{y + 1:3d} {line}")
    hot = np.unravel_index(np.argmax(grid), grid.shape)
    print(f"\n-> hottest node: x={hot[1] + 1}, y={hot[0] + 1} "
          "(the relay row through the gateway)")


def main() -> None:
    winner = topology_comparison()
    lifetime_study(winner)
    hotspot_map(winner)


if __name__ == "__main__":
    main()
