#!/usr/bin/env python
"""A smart-farm deployment: collection, command-and-control, and routing.

Connects the paper's broadcast contribution to the systems around it:

* **downlink** — the farm controller broadcasts irrigation commands to
  all 512 soil sensors (the paper's protocol vs unicasting to each);
* **uplink** — hourly soil readings must reach a base station 100 m away:
  LEACH clustering vs convergecast along the paper's reversed broadcast
  tree (with rotating gateways);
* **peer traffic** — pump controllers exchange unicast status flows; the
  lattice's dimension-ordered routes vs load-balancing waypoints.

Run:  python examples/smart_farm.py
"""

import numpy as np

from repro import compute_metrics, make_topology, protocol_for
from repro.analysis import render_table
from repro.gather import DirectGathering, LeachGathering, TreeGathering
from repro.radio import TwoRayRadioModel
from repro.routing import (evaluate_flows, hotspot_flows, valiant_router)

BS = np.array([8.0, -100.0])  # the farmhouse, 100 m from the field
BATTERY_J = 2.0


def downlink(mesh) -> None:
    print("=" * 66)
    print("downlink: broadcasting an irrigation command")
    print("=" * 66)
    compiled = protocol_for(mesh).compile(mesh, (16, 8))
    bm = compute_metrics(compiled.trace, mesh)
    flows = [((16, 8), mesh.coord(i)) for i in range(mesh.num_nodes)
             if mesh.coord(i) != (16, 8)]
    fr = evaluate_flows(mesh, flows)
    print(render_table([
        {"method": "paper broadcast", "tx": bm.tx,
         "energy_J": round(bm.energy_j, 4), "delay_slots": bm.delay_slots},
        {"method": "511 unicasts", "tx": fr.total_hops,
         "energy_J": round(fr.energy_j, 4), "delay_slots": fr.max_hops},
    ], ["method", "tx", "energy_J", "delay_slots"]))
    print(f"\n-> the compiled broadcast is "
          f"{fr.energy_j / bm.energy_j:.0f}x cheaper than per-sensor "
          "unicast\n")


def uplink(mesh) -> None:
    print("=" * 66)
    print("uplink: hourly readings to the farmhouse (100 m away)")
    print("=" * 66)
    model = TwoRayRadioModel()
    gateways = [(16, 1), (1, 8), (32, 8), (16, 16)]
    rows = []
    for name, proto in [
        ("every sensor direct", DirectGathering(model=model)),
        ("LEACH clusters", LeachGathering(p=0.05, seed=2, model=model)),
        ("lattice tree, rotating gateways",
         TreeGathering(gateway=gateways, model=model)),
    ]:
        lt = proto.lifetime(mesh, BS, battery_j=BATTERY_J,
                            max_rounds=150_000)
        rows.append({
            "collection": name,
            "hours to first dead sensor": lt.rounds_completed,
            "J/round": round(lt.mean_round_energy_j, 4),
            "load max/mean": round(lt.energy_imbalance, 2),
        })
    print(render_table(rows, ["collection", "hours to first dead sensor",
                              "J/round", "load max/mean"]))
    print("\n-> short lattice hops + aggregation match LEACH's per-round "
          "energy; rotating\n   the gateway is the tree's answer to "
          "LEACH's rotating cluster heads\n")


def peer_traffic(mesh) -> None:
    print("=" * 66)
    print("peer traffic: pump controllers all query the master valve")
    print("=" * 66)
    flows = hotspot_flows(mesh, 96, (16, 8), seed=5)
    direct = evaluate_flows(mesh, flows)
    balanced = evaluate_flows(mesh, flows, router=valiant_router(9))
    print(render_table([
        {"routing": "shortest path (XY)", **direct.as_row()},
        {"routing": "valiant waypoints", **balanced.as_row()},
    ], ["routing", "flows", "total_hops", "energy_J", "max_load",
        "load_imbalance"]))
    print("\n-> shortest-path routing piles "
          f"{direct.max_load} forwards onto the busiest node; waypoint "
          "routing\n   flattens the hotspot at the price of longer routes "
          "(the reference-[9] trade)")


def main() -> None:
    mesh = make_topology("2D-4")  # 32x16 soil-sensor lattice
    downlink(mesh)
    uplink(mesh)
    peer_traffic(mesh)


if __name__ == "__main__":
    main()
